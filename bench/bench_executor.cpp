// Static-executor benchmark: compares the compiled shape-specialized
// inference program against the autograd-tape forward it was traced from,
// and enforces the executor's core contracts:
//
//   1. Steady-state runs perform ZERO tensor heap allocations and ZERO
//      storage-pool lookups — the pre-planned arena absorbs every
//      intermediate, and the caller-held output tensor is reused in place.
//   2. The compiled forecast is bitwise identical to the tape forward.
//   3. The executor is faster than the tape at equal thread count.
//
// Also reports the one-time trace+compile cost and the end-to-end
// RunBatchedInference latency in tape vs static mode (what serving sees).
//
// Emits a single JSON object on stdout (snapshot lives in
// bench/BENCH_executor.json); pass a path as argv[1] to also write it
// there. Exits nonzero if any contract above fails.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "autograd/variable.h"
#include "core/memory_tracker.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/dataset.h"
#include "exec/engine.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/tensor.h"
#include "training/forecast_service.h"

namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
using sstban::core::MemoryTracker;
using sstban::sstban::SstbanConfig;
using sstban::sstban::SstbanModel;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Serving-scale-ish SSTBAN: every layer type exercised, hundreds of traced
// ops, yet small enough that the whole bench stays in CI budget.
SstbanConfig BenchConfig() {
  SstbanConfig c;
  c.num_nodes = 32;
  c.input_len = 12;
  c.output_len = 12;
  c.num_features = 1;
  c.steps_per_day = 96;
  c.hidden_dim = 16;
  c.num_heads = 4;
  c.encoder_blocks = 2;
  c.decoder_blocks = 2;
  c.temporal_refs = 4;
  c.spatial_refs = 4;
  c.patch_len = 3;
  c.self_supervised = false;
  c.seed = 5;
  return c;
}

sstban::data::Batch MakeBatch(const SstbanConfig& c, int64_t batch_size) {
  sstban::core::Rng rng(42);
  sstban::data::Batch batch;
  batch.x = t::Tensor::RandomNormal(
      t::Shape{batch_size, c.input_len, c.num_nodes, c.num_features}, rng);
  batch.y = t::Tensor::Zeros(
      t::Shape{batch_size, c.output_len, c.num_nodes, c.num_features});
  for (int64_t i = 0; i < batch_size; ++i) {
    sstban::training::AppendCalendarFeatures(
        /*first_step=*/7 + 11 * i, c.input_len, c.output_len, c.steps_per_day,
        &batch);
  }
  return batch;
}

template <typename Fn>
double TimeMs(int iters, Fn&& fn) {
  double start = NowSeconds();
  for (int i = 0; i < iters; ++i) fn();
  return (NowSeconds() - start) * 1e3 / iters;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kWarmup = 3;
  constexpr int kIters = 15;
  constexpr int64_t kBatch = 8;

  SstbanConfig config = BenchConfig();
  SstbanModel model(config);
  model.SetTraining(false);
  sstban::data::Batch batch = MakeBatch(config, kBatch);
  sstban::data::Normalizer norm = sstban::data::Normalizer::Fit(batch.x);

  sstban::exec::InferenceEngine* engine = model.inference_engine();
  if (engine == nullptr) {
    std::fprintf(stderr, "FAIL: model does not expose an inference engine\n");
    return 1;
  }

  // --- One-time trace + compile cost (includes the compile-time replay
  // self-check), vs a single tape forward at the same shape. ---
  t::Tensor compiled;
  double compile_ms = TimeMs(1, [&] {
    sstban::core::Status status = engine->Run(batch.x, batch, &compiled);
    if (!status.ok()) {
      std::fprintf(stderr, "FAIL: compile run: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  });
  t::Tensor tape;
  double tape_once_ms = TimeMs(1, [&] {
    ag::NoGradGuard no_grad;
    tape = model.Predict(batch.x, batch).value();
  });
  sstban::exec::InferenceEngine::Stats stats = engine->stats();
  if (stats.compiles != 1 || stats.poisoned != 0) {
    std::fprintf(stderr, "FAIL: expected 1 clean compile, got %lld (%lld poisoned)\n",
                 static_cast<long long>(stats.compiles),
                 static_cast<long long>(stats.poisoned));
    return 1;
  }

  // --- Contract 2: bitwise equality with the tape forward. ---
  bool bitwise =
      compiled.shape() == tape.shape() &&
      std::memcmp(compiled.data(), tape.data(),
                  static_cast<size_t>(tape.size()) * sizeof(float)) == 0;

  // --- Contract 1: zero heap allocs, zero pool lookups at steady state.
  // Single-threaded so ParallelFor runs inline; the reused output tensor
  // and the arena leave nothing left to allocate. ---
  sstban::core::SetParallelismCapForTesting(1);
  MemoryTracker& tracker = MemoryTracker::Global();
  for (int i = 0; i < kWarmup; ++i) engine->Run(batch.x, batch, &compiled);
  int64_t heap0 = tracker.heap_allocs();
  int64_t pool0 = tracker.pool_hits() + tracker.pool_misses();
  double static_1t_ms = TimeMs(kIters, [&] {
    engine->Run(batch.x, batch, &compiled);
  });
  double steady_heap_allocs =
      static_cast<double>(tracker.heap_allocs() - heap0) / kIters;
  double steady_pool_lookups =
      static_cast<double>(tracker.pool_hits() + tracker.pool_misses() - pool0) /
      kIters;
  double tape_1t_ms = TimeMs(kIters, [&] {
    ag::NoGradGuard no_grad;
    tape = model.Predict(batch.x, batch).value();
  });
  sstban::core::SetParallelismCapForTesting(0);

  // --- Contract 3 + headline numbers: tape vs static at the latency-
  // critical serving shape, a single request (B=1). Large batches amortize
  // the tape's per-op overhead under the matmuls; a lone request is where
  // graph bookkeeping dominates and the flat program pays off. ABA order
  // with min-of-two so allocator/CPU warm-up drift cannot masquerade as an
  // executor win. ---
  sstban::data::Batch one = MakeBatch(config, /*batch_size=*/1);
  auto run_static = [&] { engine->Run(one.x, one, &compiled); };
  auto run_tape = [&] {
    ag::NoGradGuard no_grad;
    tape = model.Predict(one.x, one).value();
  };
  for (int i = 0; i < kWarmup; ++i) { run_static(); run_tape(); }
  double static_ms = TimeMs(kIters, run_static);
  double tape_ms = TimeMs(kIters, run_tape);
  static_ms = std::min(static_ms, TimeMs(kIters, run_static));
  tape_ms = std::min(tape_ms, TimeMs(kIters, run_tape));

  // --- End-to-end serving path (normalize + forward + denormalize) in both
  // executor modes, exactly as the batcher invokes it. ---
  using sstban::training::ExecutorMode;
  using sstban::training::RunBatchedInference;
  for (int i = 0; i < kWarmup; ++i) {
    RunBatchedInference(&model, norm, one, ExecutorMode::kStatic);
    RunBatchedInference(&model, norm, one, ExecutorMode::kTape);
  }
  double e2e_static_ms = TimeMs(kIters, [&] {
    RunBatchedInference(&model, norm, one, ExecutorMode::kStatic);
  });
  double e2e_tape_ms = TimeMs(kIters, [&] {
    RunBatchedInference(&model, norm, one, ExecutorMode::kTape);
  });

  double speedup = tape_ms / std::max(static_ms, 1e-9);
  double e2e_speedup = e2e_tape_ms / std::max(e2e_static_ms, 1e-9);

  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"executor\",\n"
      "  \"shape\": {\"B\": %lld, \"P\": %lld, \"N\": %lld},\n"
      "  \"iters\": %d,\n"
      "  \"trace_compile_ms\": %.3f,\n"
      "  \"tape_forward_once_ms\": %.3f,\n"
      "  \"steady_heap_allocs_per_run\": %.2f,\n"
      "  \"steady_pool_lookups_per_run\": %.2f,\n"
      "  \"batched_single_thread\": {\"tape_ms\": %.3f, \"static_ms\": %.3f},\n"
      "  \"single_request\": {\"tape_ms\": %.3f, \"static_ms\": %.3f, "
      "\"speedup\": %.2f},\n"
      "  \"single_request_end_to_end\": {\"tape_ms\": %.3f, \"static_ms\": %.3f, "
      "\"speedup\": %.2f},\n"
      "  \"bitwise_identical_to_tape\": %s\n"
      "}\n",
      static_cast<long long>(kBatch),
      static_cast<long long>(config.input_len),
      static_cast<long long>(config.num_nodes), kIters, compile_ms,
      tape_once_ms, steady_heap_allocs, steady_pool_lookups, tape_1t_ms,
      static_1t_ms, tape_ms, static_ms, speedup, e2e_tape_ms, e2e_static_ms,
      e2e_speedup, bitwise ? "true" : "false");
  std::fputs(buf, stdout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << buf;
  }

  if (!bitwise) {
    std::fprintf(stderr, "FAIL: executor forecast != tape forecast bitwise\n");
    return 1;
  }
  if (steady_heap_allocs != 0.0 || steady_pool_lookups != 0.0) {
    std::fprintf(stderr,
                 "FAIL: steady-state run not allocation-free "
                 "(%.2f heap allocs, %.2f pool lookups per run)\n",
                 steady_heap_allocs, steady_pool_lookups);
    return 1;
  }
  // Gate on the end-to-end serving path: that is what RunBatchedInference
  // dispatches, and where the executor's skipped graph construction shows.
  // The raw-kernel speedup is reported but not gated — matmul time is the
  // same either way, so it hovers near 1x and would only measure noise.
  if (e2e_speedup < 1.05) {
    std::fprintf(stderr,
                 "FAIL: end-to-end executor speedup %.2fx over tape "
                 "(need >= 1.05x)\n",
                 e2e_speedup);
    return 1;
  }
  return 0;
}

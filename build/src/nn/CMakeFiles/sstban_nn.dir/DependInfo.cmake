
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/sstban_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/sstban_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/gru_cell.cc" "src/nn/CMakeFiles/sstban_nn.dir/gru_cell.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/gru_cell.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/sstban_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/sstban_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/sstban_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/sstban_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/sstban_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/nn/CMakeFiles/sstban_nn.dir/serialization.cc.o" "gcc" "src/nn/CMakeFiles/sstban_nn.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/sstban_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sstban_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sstban_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

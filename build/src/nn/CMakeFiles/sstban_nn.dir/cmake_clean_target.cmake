file(REMOVE_RECURSE
  "libsstban_nn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sstban_nn.dir/attention.cc.o"
  "CMakeFiles/sstban_nn.dir/attention.cc.o.d"
  "CMakeFiles/sstban_nn.dir/embedding.cc.o"
  "CMakeFiles/sstban_nn.dir/embedding.cc.o.d"
  "CMakeFiles/sstban_nn.dir/gru_cell.cc.o"
  "CMakeFiles/sstban_nn.dir/gru_cell.cc.o.d"
  "CMakeFiles/sstban_nn.dir/init.cc.o"
  "CMakeFiles/sstban_nn.dir/init.cc.o.d"
  "CMakeFiles/sstban_nn.dir/layer_norm.cc.o"
  "CMakeFiles/sstban_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/sstban_nn.dir/linear.cc.o"
  "CMakeFiles/sstban_nn.dir/linear.cc.o.d"
  "CMakeFiles/sstban_nn.dir/mlp.cc.o"
  "CMakeFiles/sstban_nn.dir/mlp.cc.o.d"
  "CMakeFiles/sstban_nn.dir/module.cc.o"
  "CMakeFiles/sstban_nn.dir/module.cc.o.d"
  "CMakeFiles/sstban_nn.dir/serialization.cc.o"
  "CMakeFiles/sstban_nn.dir/serialization.cc.o.d"
  "libsstban_nn.a"
  "libsstban_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sstban_nn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsstban_tensor.a"
)

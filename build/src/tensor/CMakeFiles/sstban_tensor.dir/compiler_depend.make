# Empty compiler generated dependencies file for sstban_tensor.
# This may be replaced when dependencies are built.

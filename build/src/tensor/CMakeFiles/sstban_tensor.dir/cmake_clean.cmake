file(REMOVE_RECURSE
  "CMakeFiles/sstban_tensor.dir/linalg.cc.o"
  "CMakeFiles/sstban_tensor.dir/linalg.cc.o.d"
  "CMakeFiles/sstban_tensor.dir/matmul.cc.o"
  "CMakeFiles/sstban_tensor.dir/matmul.cc.o.d"
  "CMakeFiles/sstban_tensor.dir/ops.cc.o"
  "CMakeFiles/sstban_tensor.dir/ops.cc.o.d"
  "CMakeFiles/sstban_tensor.dir/shape.cc.o"
  "CMakeFiles/sstban_tensor.dir/shape.cc.o.d"
  "CMakeFiles/sstban_tensor.dir/tensor.cc.o"
  "CMakeFiles/sstban_tensor.dir/tensor.cc.o.d"
  "libsstban_tensor.a"
  "libsstban_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/training/forecast_service.cc" "src/training/CMakeFiles/sstban_training.dir/forecast_service.cc.o" "gcc" "src/training/CMakeFiles/sstban_training.dir/forecast_service.cc.o.d"
  "/root/repo/src/training/metrics.cc" "src/training/CMakeFiles/sstban_training.dir/metrics.cc.o" "gcc" "src/training/CMakeFiles/sstban_training.dir/metrics.cc.o.d"
  "/root/repo/src/training/model.cc" "src/training/CMakeFiles/sstban_training.dir/model.cc.o" "gcc" "src/training/CMakeFiles/sstban_training.dir/model.cc.o.d"
  "/root/repo/src/training/trainer.cc" "src/training/CMakeFiles/sstban_training.dir/trainer.cc.o" "gcc" "src/training/CMakeFiles/sstban_training.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sstban_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sstban_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/sstban_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sstban_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/sstban_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sstban_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sstban_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sstban_training.dir/forecast_service.cc.o"
  "CMakeFiles/sstban_training.dir/forecast_service.cc.o.d"
  "CMakeFiles/sstban_training.dir/metrics.cc.o"
  "CMakeFiles/sstban_training.dir/metrics.cc.o.d"
  "CMakeFiles/sstban_training.dir/model.cc.o"
  "CMakeFiles/sstban_training.dir/model.cc.o.d"
  "CMakeFiles/sstban_training.dir/trainer.cc.o"
  "CMakeFiles/sstban_training.dir/trainer.cc.o.d"
  "libsstban_training.a"
  "libsstban_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

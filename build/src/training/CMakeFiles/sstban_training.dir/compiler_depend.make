# Empty compiler generated dependencies file for sstban_training.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsstban_training.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sstban_optim.dir/lr_scheduler.cc.o"
  "CMakeFiles/sstban_optim.dir/lr_scheduler.cc.o.d"
  "CMakeFiles/sstban_optim.dir/optimizer.cc.o"
  "CMakeFiles/sstban_optim.dir/optimizer.cc.o.d"
  "libsstban_optim.a"
  "libsstban_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

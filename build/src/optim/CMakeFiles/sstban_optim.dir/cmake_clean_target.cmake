file(REMOVE_RECURSE
  "libsstban_optim.a"
)

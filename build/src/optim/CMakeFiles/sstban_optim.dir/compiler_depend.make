# Empty compiler generated dependencies file for sstban_optim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsstban_baselines.a"
)

# Empty compiler generated dependencies file for sstban_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sstban_baselines.dir/agcrn.cc.o"
  "CMakeFiles/sstban_baselines.dir/agcrn.cc.o.d"
  "CMakeFiles/sstban_baselines.dir/astgnn.cc.o"
  "CMakeFiles/sstban_baselines.dir/astgnn.cc.o.d"
  "CMakeFiles/sstban_baselines.dir/common.cc.o"
  "CMakeFiles/sstban_baselines.dir/common.cc.o.d"
  "CMakeFiles/sstban_baselines.dir/dcrnn.cc.o"
  "CMakeFiles/sstban_baselines.dir/dcrnn.cc.o.d"
  "CMakeFiles/sstban_baselines.dir/dmstgcn.cc.o"
  "CMakeFiles/sstban_baselines.dir/dmstgcn.cc.o.d"
  "CMakeFiles/sstban_baselines.dir/gman.cc.o"
  "CMakeFiles/sstban_baselines.dir/gman.cc.o.d"
  "CMakeFiles/sstban_baselines.dir/gwnet.cc.o"
  "CMakeFiles/sstban_baselines.dir/gwnet.cc.o.d"
  "CMakeFiles/sstban_baselines.dir/historical_average.cc.o"
  "CMakeFiles/sstban_baselines.dir/historical_average.cc.o.d"
  "CMakeFiles/sstban_baselines.dir/var_model.cc.o"
  "CMakeFiles/sstban_baselines.dir/var_model.cc.o.d"
  "libsstban_baselines.a"
  "libsstban_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsstban_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sstban_core.dir/memory_tracker.cc.o"
  "CMakeFiles/sstban_core.dir/memory_tracker.cc.o.d"
  "CMakeFiles/sstban_core.dir/rng.cc.o"
  "CMakeFiles/sstban_core.dir/rng.cc.o.d"
  "CMakeFiles/sstban_core.dir/status.cc.o"
  "CMakeFiles/sstban_core.dir/status.cc.o.d"
  "CMakeFiles/sstban_core.dir/string_util.cc.o"
  "CMakeFiles/sstban_core.dir/string_util.cc.o.d"
  "CMakeFiles/sstban_core.dir/thread_pool.cc.o"
  "CMakeFiles/sstban_core.dir/thread_pool.cc.o.d"
  "libsstban_core.a"
  "libsstban_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sstban_core.
# This may be replaced when dependencies are built.

# Empty dependencies file for sstban_autograd.
# This may be replaced when dependencies are built.

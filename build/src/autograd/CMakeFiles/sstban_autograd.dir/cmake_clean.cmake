file(REMOVE_RECURSE
  "CMakeFiles/sstban_autograd.dir/ops.cc.o"
  "CMakeFiles/sstban_autograd.dir/ops.cc.o.d"
  "CMakeFiles/sstban_autograd.dir/variable.cc.o"
  "CMakeFiles/sstban_autograd.dir/variable.cc.o.d"
  "libsstban_autograd.a"
  "libsstban_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsstban_autograd.a"
)

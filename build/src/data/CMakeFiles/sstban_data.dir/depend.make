# Empty dependencies file for sstban_data.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sstban_data.dir/corruption.cc.o"
  "CMakeFiles/sstban_data.dir/corruption.cc.o.d"
  "CMakeFiles/sstban_data.dir/csv_io.cc.o"
  "CMakeFiles/sstban_data.dir/csv_io.cc.o.d"
  "CMakeFiles/sstban_data.dir/dataset.cc.o"
  "CMakeFiles/sstban_data.dir/dataset.cc.o.d"
  "CMakeFiles/sstban_data.dir/normalizer.cc.o"
  "CMakeFiles/sstban_data.dir/normalizer.cc.o.d"
  "CMakeFiles/sstban_data.dir/synthetic_world.cc.o"
  "CMakeFiles/sstban_data.dir/synthetic_world.cc.o.d"
  "libsstban_data.a"
  "libsstban_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corruption.cc" "src/data/CMakeFiles/sstban_data.dir/corruption.cc.o" "gcc" "src/data/CMakeFiles/sstban_data.dir/corruption.cc.o.d"
  "/root/repo/src/data/csv_io.cc" "src/data/CMakeFiles/sstban_data.dir/csv_io.cc.o" "gcc" "src/data/CMakeFiles/sstban_data.dir/csv_io.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/sstban_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/sstban_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/normalizer.cc" "src/data/CMakeFiles/sstban_data.dir/normalizer.cc.o" "gcc" "src/data/CMakeFiles/sstban_data.dir/normalizer.cc.o.d"
  "/root/repo/src/data/synthetic_world.cc" "src/data/CMakeFiles/sstban_data.dir/synthetic_world.cc.o" "gcc" "src/data/CMakeFiles/sstban_data.dir/synthetic_world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sstban_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sstban_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sstban_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

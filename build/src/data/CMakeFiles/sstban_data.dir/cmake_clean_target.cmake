file(REMOVE_RECURSE
  "libsstban_data.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sstban_model.dir/bottleneck_attention.cc.o"
  "CMakeFiles/sstban_model.dir/bottleneck_attention.cc.o.d"
  "CMakeFiles/sstban_model.dir/config.cc.o"
  "CMakeFiles/sstban_model.dir/config.cc.o.d"
  "CMakeFiles/sstban_model.dir/decoders.cc.o"
  "CMakeFiles/sstban_model.dir/decoders.cc.o.d"
  "CMakeFiles/sstban_model.dir/encoder.cc.o"
  "CMakeFiles/sstban_model.dir/encoder.cc.o.d"
  "CMakeFiles/sstban_model.dir/masking.cc.o"
  "CMakeFiles/sstban_model.dir/masking.cc.o.d"
  "CMakeFiles/sstban_model.dir/model.cc.o"
  "CMakeFiles/sstban_model.dir/model.cc.o.d"
  "CMakeFiles/sstban_model.dir/stba_block.cc.o"
  "CMakeFiles/sstban_model.dir/stba_block.cc.o.d"
  "CMakeFiles/sstban_model.dir/ste.cc.o"
  "CMakeFiles/sstban_model.dir/ste.cc.o.d"
  "CMakeFiles/sstban_model.dir/transform_attention.cc.o"
  "CMakeFiles/sstban_model.dir/transform_attention.cc.o.d"
  "libsstban_model.a"
  "libsstban_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

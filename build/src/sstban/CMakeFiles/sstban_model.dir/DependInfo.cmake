
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sstban/bottleneck_attention.cc" "src/sstban/CMakeFiles/sstban_model.dir/bottleneck_attention.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/bottleneck_attention.cc.o.d"
  "/root/repo/src/sstban/config.cc" "src/sstban/CMakeFiles/sstban_model.dir/config.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/config.cc.o.d"
  "/root/repo/src/sstban/decoders.cc" "src/sstban/CMakeFiles/sstban_model.dir/decoders.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/decoders.cc.o.d"
  "/root/repo/src/sstban/encoder.cc" "src/sstban/CMakeFiles/sstban_model.dir/encoder.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/encoder.cc.o.d"
  "/root/repo/src/sstban/masking.cc" "src/sstban/CMakeFiles/sstban_model.dir/masking.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/masking.cc.o.d"
  "/root/repo/src/sstban/model.cc" "src/sstban/CMakeFiles/sstban_model.dir/model.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/model.cc.o.d"
  "/root/repo/src/sstban/stba_block.cc" "src/sstban/CMakeFiles/sstban_model.dir/stba_block.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/stba_block.cc.o.d"
  "/root/repo/src/sstban/ste.cc" "src/sstban/CMakeFiles/sstban_model.dir/ste.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/ste.cc.o.d"
  "/root/repo/src/sstban/transform_attention.cc" "src/sstban/CMakeFiles/sstban_model.dir/transform_attention.cc.o" "gcc" "src/sstban/CMakeFiles/sstban_model.dir/transform_attention.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sstban_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/training/CMakeFiles/sstban_training.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sstban_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sstban_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/sstban_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/sstban_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sstban_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sstban_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsstban_model.a"
)

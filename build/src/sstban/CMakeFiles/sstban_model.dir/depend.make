# Empty dependencies file for sstban_model.
# This may be replaced when dependencies are built.

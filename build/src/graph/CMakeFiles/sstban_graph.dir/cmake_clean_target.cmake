file(REMOVE_RECURSE
  "libsstban_graph.a"
)

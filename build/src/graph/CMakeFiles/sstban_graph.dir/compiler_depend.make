# Empty compiler generated dependencies file for sstban_graph.
# This may be replaced when dependencies are built.

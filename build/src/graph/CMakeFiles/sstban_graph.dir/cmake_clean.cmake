file(REMOVE_RECURSE
  "CMakeFiles/sstban_graph.dir/traffic_graph.cc.o"
  "CMakeFiles/sstban_graph.dir/traffic_graph.cc.o.d"
  "libsstban_graph.a"
  "libsstban_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

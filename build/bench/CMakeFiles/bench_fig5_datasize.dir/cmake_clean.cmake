file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_datasize.dir/bench_fig5_datasize.cpp.o"
  "CMakeFiles/bench_fig5_datasize.dir/bench_fig5_datasize.cpp.o.d"
  "bench_fig5_datasize"
  "bench_fig5_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

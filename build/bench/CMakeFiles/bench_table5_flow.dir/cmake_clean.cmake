file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_flow.dir/bench_table5_flow.cpp.o"
  "CMakeFiles/bench_table5_flow.dir/bench_table5_flow.cpp.o.d"
  "bench_table5_flow"
  "bench_table5_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table5_flow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_mask.dir/bench_fig9_mask.cpp.o"
  "CMakeFiles/bench_fig9_mask.dir/bench_fig9_mask.cpp.o.d"
  "bench_fig9_mask"
  "bench_fig9_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

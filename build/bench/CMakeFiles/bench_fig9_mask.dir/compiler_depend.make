# Empty compiler generated dependencies file for bench_fig9_mask.
# This may be replaced when dependencies are built.

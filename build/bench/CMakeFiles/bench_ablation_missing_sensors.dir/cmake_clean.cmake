file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_missing_sensors.dir/bench_ablation_missing_sensors.cpp.o"
  "CMakeFiles/bench_ablation_missing_sensors.dir/bench_ablation_missing_sensors.cpp.o.d"
  "bench_ablation_missing_sensors"
  "bench_ablation_missing_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_missing_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

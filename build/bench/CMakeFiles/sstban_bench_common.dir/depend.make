# Empty dependencies file for sstban_bench_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sstban_bench_common.dir/common/experiment.cc.o"
  "CMakeFiles/sstban_bench_common.dir/common/experiment.cc.o.d"
  "libsstban_bench_common.a"
  "libsstban_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsstban_bench_common.a"
)

# Empty dependencies file for bench_table7_cost.
# This may be replaced when dependencies are built.

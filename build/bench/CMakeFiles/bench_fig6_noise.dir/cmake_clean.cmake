file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_noise.dir/bench_fig6_noise.cpp.o"
  "CMakeFiles/bench_fig6_noise.dir/bench_fig6_noise.cpp.o.d"
  "bench_fig6_noise"
  "bench_fig6_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_noise.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_speed.dir/bench_table4_speed.cpp.o"
  "CMakeFiles/bench_table4_speed.dir/bench_table4_speed.cpp.o.d"
  "bench_table4_speed"
  "bench_table4_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

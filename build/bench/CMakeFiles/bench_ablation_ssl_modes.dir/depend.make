# Empty dependencies file for bench_ablation_ssl_modes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_attention_scaling.dir/bench_attention_scaling.cpp.o"
  "CMakeFiles/bench_attention_scaling.dir/bench_attention_scaling.cpp.o.d"
  "bench_attention_scaling"
  "bench_attention_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attention_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/speed_forecasting.dir/speed_forecasting.cpp.o"
  "CMakeFiles/speed_forecasting.dir/speed_forecasting.cpp.o.d"
  "speed_forecasting"
  "speed_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

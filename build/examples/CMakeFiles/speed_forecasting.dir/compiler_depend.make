# Empty compiler generated dependencies file for speed_forecasting.
# This may be replaced when dependencies are built.

# Empty dependencies file for masked_pretraining.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/masked_pretraining.dir/masked_pretraining.cpp.o"
  "CMakeFiles/masked_pretraining.dir/masked_pretraining.cpp.o.d"
  "masked_pretraining"
  "masked_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masked_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

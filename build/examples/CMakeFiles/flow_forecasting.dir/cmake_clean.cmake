file(REMOVE_RECURSE
  "CMakeFiles/flow_forecasting.dir/flow_forecasting.cpp.o"
  "CMakeFiles/flow_forecasting.dir/flow_forecasting.cpp.o.d"
  "flow_forecasting"
  "flow_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for flow_forecasting.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for reference_point_analysis.
# This may be replaced when dependencies are built.

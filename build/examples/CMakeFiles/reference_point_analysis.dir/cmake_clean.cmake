file(REMOVE_RECURSE
  "CMakeFiles/reference_point_analysis.dir/reference_point_analysis.cpp.o"
  "CMakeFiles/reference_point_analysis.dir/reference_point_analysis.cpp.o.d"
  "reference_point_analysis"
  "reference_point_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_point_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sstban_cli.dir/sstban_cli.cpp.o"
  "CMakeFiles/sstban_cli.dir/sstban_cli.cpp.o.d"
  "sstban_cli"
  "sstban_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sstban_cli.
# This may be replaced when dependencies are built.

# Empty dependencies file for interpretability_test.
# This may be replaced when dependencies are built.

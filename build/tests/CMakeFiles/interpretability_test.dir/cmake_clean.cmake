file(REMOVE_RECURSE
  "CMakeFiles/interpretability_test.dir/interpretability_test.cc.o"
  "CMakeFiles/interpretability_test.dir/interpretability_test.cc.o.d"
  "interpretability_test"
  "interpretability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpretability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

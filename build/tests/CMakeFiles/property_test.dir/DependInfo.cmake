
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sstban/CMakeFiles/sstban_model.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sstban_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/training/CMakeFiles/sstban_training.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sstban_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sstban_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/sstban_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/sstban_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sstban_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sstban_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sstban_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/target_feature_test.dir/target_feature_test.cc.o"
  "CMakeFiles/target_feature_test.dir/target_feature_test.cc.o.d"
  "target_feature_test"
  "target_feature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for target_feature_test.
# This may be replaced when dependencies are built.

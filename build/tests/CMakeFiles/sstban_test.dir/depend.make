# Empty dependencies file for sstban_test.
# This may be replaced when dependencies are built.

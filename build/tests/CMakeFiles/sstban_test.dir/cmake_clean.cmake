file(REMOVE_RECURSE
  "CMakeFiles/sstban_test.dir/sstban_test.cc.o"
  "CMakeFiles/sstban_test.dir/sstban_test.cc.o.d"
  "sstban_test"
  "sstban_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstban_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Interpretability probe for §IV-B's claim that bottleneck reference
// points behave like learned cluster centers. We build a toy population of
// nodes drawn from three distinct pattern groups, train a spatial
// BottleneckAttention (R = 3 reference points) to autoencode the node
// features through the bottleneck, then read out each node's soft
// assignment to the reference points and compare the hard assignments with
// the ground-truth groups.

#include <cstdio>
#include <vector>

#include "autograd/ops.h"
#include "core/rng.h"
#include "optim/optimizer.h"
#include "sstban/bottleneck_attention.h"
#include "tensor/ops.h"

int main() {
  namespace ag = ::sstban::autograd;
  namespace t = ::sstban::tensor;

  const int64_t kNodes = 18, kFeatures = 8, kGroups = 3;
  sstban::core::Rng rng(42);

  // Three well-separated group prototypes; each node is its group's
  // prototype plus small noise.
  std::vector<t::Tensor> prototypes;
  for (int64_t g = 0; g < kGroups; ++g) {
    prototypes.push_back(
        t::Tensor::RandomNormal(t::Shape{kFeatures}, rng, 0.0f, 2.0f));
  }
  t::Tensor x(t::Shape{1, kNodes, kFeatures});
  std::vector<int64_t> truth(kNodes);
  for (int64_t v = 0; v < kNodes; ++v) {
    truth[v] = v % kGroups;
    for (int64_t f = 0; f < kFeatures; ++f) {
      x.at({0, v, f}) =
          prototypes[truth[v]].at({f}) + rng.NextGaussian(0.0f, 0.15f);
    }
  }

  // Autoencode through the bottleneck: all node-to-node interaction must
  // pass through the 3 reference points.
  sstban::sstban::BottleneckAttention attn(kFeatures, kFeatures, kGroups,
                                           /*num_heads=*/1, rng);
  sstban::optim::Adam optimizer(attn.Parameters(), 1e-2f);
  ag::Variable input(x);
  for (int step = 0; step < 800; ++step) {
    ag::Variable recon = attn.Forward(input);
    ag::Variable loss = ag::MseLoss(recon, input);
    attn.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    if (step % 200 == 0) {
      std::printf("step %3d  reconstruction MSE %.4f\n", step, loss.item());
    }
  }

  // Read the soft assignments: second-stage attention [1, N, R].
  t::Tensor assignments;
  {
    ag::NoGradGuard no_grad;
    attn.Forward(input, nullptr, &assignments);
  }

  std::printf("\nnode | true group | attention over reference points | argmax\n");
  // votes[r][g] = nodes of true group g whose argmax is reference point r.
  std::vector<std::vector<int64_t>> votes(kGroups,
                                          std::vector<int64_t>(kGroups, 0));
  for (int64_t v = 0; v < kNodes; ++v) {
    int64_t best = 0;
    for (int64_t r = 1; r < kGroups; ++r) {
      if (assignments.at({0, v, r}) > assignments.at({0, v, best})) best = r;
    }
    votes[best][truth[v]]++;
    std::printf("%4lld | %10lld | %.2f  %.2f  %.2f               | ref %lld\n",
                static_cast<long long>(v), static_cast<long long>(truth[v]),
                assignments.at({0, v, 0}), assignments.at({0, v, 1}),
                assignments.at({0, v, 2}), static_cast<long long>(best));
  }
  // Standard cluster purity: each predicted cluster contributes its
  // dominant true group's count. Collapsed clusters are penalized.
  int64_t agreements = 0;
  for (int64_t r = 0; r < kGroups; ++r) {
    int64_t best = 0;
    for (int64_t g = 0; g < kGroups; ++g) best = std::max(best, votes[r][g]);
    agreements += best;
  }
  std::printf("\ncluster purity: %.0f%% (%lld / %lld; 33%% would be chance "
              "with 3 balanced groups)\n",
              100.0 * static_cast<double>(agreements) / kNodes,
              static_cast<long long>(agreements),
              static_cast<long long>(kNodes));
  std::printf("High purity supports the paper's reading of reference points "
              "as cluster centers;\nthe soft assignment rows above show the "
              "group structure even when argmaxes collide.\n");
  return 0;
}

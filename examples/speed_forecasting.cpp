// Traffic *speed* forecasting on a Seattle-Loop-like world (C = 3 features:
// flow, speed, occupancy; hourly slices). Demonstrates the paper's headline
// use case — forecasting a full day ahead (P = Q = 24) — and reports
// per-horizon speed errors against the historical-average baseline, the
// kind of output a traffic-management deployment would consume.

#include <cstdio>
#include <memory>

#include "baselines/historical_average.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/trainer.h"

int main() {
  namespace data = ::sstban::data;
  namespace training = ::sstban::training;
  namespace model_ns = ::sstban::sstban;

  // A year-like hourly speed world, scaled down for the example.
  data::SyntheticWorldConfig world = data::SeattleLikeConfig();
  world.num_nodes = 16;
  world.num_days = 21;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  std::printf("world: %s, %lld hourly steps, %lld sensors, features "
              "(flow, speed, occupancy)\n",
              dataset->name.c_str(), static_cast<long long>(dataset->num_steps()),
              static_cast<long long>(dataset->num_nodes()));

  // Forecast the next full day from the previous full day.
  data::WindowDataset windows(dataset, 24, 24);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);

  model_ns::SstbanConfig config = model_ns::TableIiiConfig("seattle-24");
  config.num_nodes = dataset->num_nodes();
  config.num_features = dataset->num_features();
  config.steps_per_day = dataset->steps_per_day;
  model_ns::SstbanModel model(config);

  training::TrainerConfig trainer_config;
  trainer_config.max_epochs = 4;
  trainer_config.batch_size = 8;
  trainer_config.learning_rate = 5e-3f;
  trainer_config.target_feature = 1;  // report errors on speed
  trainer_config.verbose = true;
  training::Trainer trainer(trainer_config);
  trainer.Train(&model, windows, split, normalizer);

  // Evaluate both models on the held-out future, speed channel only.
  const int kSpeed = 1;
  training::EvalResult sstban_eval = training::Evaluate(
      &model, windows, split.test, normalizer, 8, /*per_horizon=*/true, kSpeed);
  sstban::baselines::HistoricalAverage ha;
  training::EvalResult ha_eval = training::Evaluate(
      &ha, windows, split.test, normalizer, 8, /*per_horizon=*/true, kSpeed);

  std::printf("\nspeed forecasting, next 24 hours:\n");
  std::printf("  SSTBAN overall: %s\n", sstban_eval.overall.ToString().c_str());
  std::printf("  HA     overall: %s\n", ha_eval.overall.ToString().c_str());
  std::printf("\nMAE by lead time (hours ahead):\n  hour   SSTBAN       HA\n");
  for (size_t q = 0; q < sstban_eval.per_horizon.size(); q += 4) {
    std::printf("  %4zu %8.2f %8.2f\n", q + 1, sstban_eval.per_horizon[q].mae,
                ha_eval.per_horizon[q].mae);
  }
  return 0;
}

// A tour of SSTBAN's self-supervised machinery: visualizes the three mask
// sampling strategies on a small grid, then trains SSTBAN with and without
// the self-supervised branch on a deliberately small training set to show
// the data-efficiency effect the paper claims (§V-D2): with little data,
// the masked-reconstruction auxiliary task acts as a regularizer and the
// two-branch model generalizes better.

#include <cstdio>
#include <memory>

#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "sstban/config.h"
#include "sstban/masking.h"
#include "sstban/model.h"
#include "training/trainer.h"

namespace {

void PrintMask(const sstban::tensor::Tensor& mask, const char* title) {
  std::printf("\n%s  (rows = time, cols = nodes; # = masked)\n", title);
  for (int64_t ti = 0; ti < mask.dim(0); ++ti) {
    std::printf("  ");
    for (int64_t v = 0; v < mask.dim(1); ++v) {
      std::printf("%c", mask.at({ti, v, 0}) > 0.5f ? '.' : '#');
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  namespace data = ::sstban::data;
  namespace training = ::sstban::training;
  namespace model_ns = ::sstban::sstban;

  // 1. The three masking strategies of Fig. 8, drawn on a 12x16 grid.
  sstban::core::Rng rng(7);
  PrintMask(model_ns::GenerateMask(12, 16, 1, 3, 0.35,
                                   model_ns::MaskStrategy::kSpacetimeAgnostic, rng),
            "spacetime-agnostic masking (Algorithm 1)");
  PrintMask(model_ns::GenerateMask(12, 16, 1, 3, 0.35,
                                   model_ns::MaskStrategy::kSpaceOnly, rng),
            "space-only masking");
  PrintMask(model_ns::GenerateMask(12, 16, 1, 3, 0.35,
                                   model_ns::MaskStrategy::kTimeOnly, rng),
            "time-only masking");

  // 2. Data-efficiency experiment: train on only 25% of the training split.
  data::SyntheticWorldConfig world = data::Pems08LikeConfig();
  world.num_nodes = 12;
  world.num_days = 8;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  data::WindowDataset windows(dataset, 12, 12);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  split.train = data::KeepLatestFraction(split.train, 0.25);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  std::printf("\nlow-data regime: %zu training windows\n", split.train.size());

  model_ns::SstbanConfig config;
  config.num_nodes = dataset->num_nodes();
  config.input_len = 12;
  config.output_len = 12;
  config.num_features = 1;
  config.steps_per_day = dataset->steps_per_day;
  config.hidden_dim = 16;
  config.num_heads = 4;
  config.encoder_blocks = 2;
  config.decoder_blocks = 2;
  config.patch_len = 3;
  config.mask_rate = 0.3;
  config.lambda = 0.3;

  training::TrainerConfig trainer_config;
  trainer_config.max_epochs = 6;
  trainer_config.batch_size = 8;
  trainer_config.learning_rate = 5e-3f;
  training::Trainer trainer(trainer_config);

  for (bool self_supervised : {true, false}) {
    model_ns::SstbanConfig variant = config;
    variant.self_supervised = self_supervised;
    model_ns::SstbanModel model(variant);
    trainer.Train(&model, windows, split, normalizer);
    training::EvalResult eval =
        training::Evaluate(&model, windows, split.test, normalizer, 8);
    std::printf("  %-28s test %s\n",
                self_supervised ? "SSTBAN (two branches)" : "SSTBAN w/o SSL branch",
                eval.overall.ToString().c_str());
  }
  std::printf("\nThe two-branch model should generalize at least as well from"
              " the same small\ntraining set (the paper's data-efficiency"
              " claim, Fig. 5).\n");
  return 0;
}

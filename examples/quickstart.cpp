// Quickstart: generate a synthetic traffic world, train SSTBAN on a
// long-term forecasting task, and report denormalized test metrics.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/timer.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/trainer.h"

int main() {
  namespace data = ::sstban::data;
  namespace core = ::sstban::core;
  namespace training = ::sstban::training;
  namespace model_ns = ::sstban::sstban;

  // 1. A small PeMS-like world: 28 sensors, 3 corridors, 15-minute slices.
  data::SyntheticWorldConfig world = data::Pems08LikeConfig();
  world.num_nodes = 16;  // keep the quickstart fast
  world.num_days = 8;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  std::printf("world: %s  (%lld steps x %lld nodes x %lld features)\n",
              dataset->name.c_str(),
              static_cast<long long>(dataset->num_steps()),
              static_cast<long long>(dataset->num_nodes()),
              static_cast<long long>(dataset->num_features()));

  // 2. Long-term windows (P = Q = 24 -> 6 hours in, 6 hours out) with the
  //    paper's 6:2:2 chronological split and z-score normalization.
  data::WindowDataset windows(dataset, /*input_len=*/24, /*output_len=*/24);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  std::printf("windows: %zu train / %zu val / %zu test\n", split.train.size(),
              split.val.size(), split.test.size());

  // 3. SSTBAN with the PEMS08-24 Table III hyper-parameters.
  model_ns::SstbanConfig config = model_ns::TableIiiConfig("pems08-24");
  config.num_nodes = dataset->num_nodes();
  config.num_features = dataset->num_features();
  config.steps_per_day = dataset->steps_per_day;
  model_ns::SstbanModel model(config);
  std::printf("model: %s with %lld parameters\n", model.name().c_str(),
              static_cast<long long>(model.NumParameters()));

  // 4. Train with the paper's protocol (Adam, lr 1e-3, batch 4, early
  //    stopping patience 5).
  training::TrainerConfig trainer_config;
  trainer_config.max_epochs = 3;
  trainer_config.learning_rate = 5e-3f;
  trainer_config.batch_size = 8;
  trainer_config.verbose = true;
  training::Trainer trainer(trainer_config);
  core::Timer timer;
  training::TrainStats stats = trainer.Train(&model, windows, split, normalizer);
  std::printf("trained %d epochs in %.1fs (%.1fs/epoch)\n", stats.epochs_run,
              stats.total_train_seconds, stats.seconds_per_epoch);

  // 5. Evaluate on the held-out test windows.
  training::EvalResult test =
      training::Evaluate(&model, windows, split.test, normalizer, 8);
  std::printf("test: %s\n", test.overall.ToString().c_str());
  std::printf("total wall time %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

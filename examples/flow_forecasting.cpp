// Traffic *flow* forecasting on a PEMS04-like world: a three-way shootout
// between SSTBAN, a graph-convolutional baseline (Graph WaveNet) and the
// classical VAR model, on a 3-hour-ahead task. Shows how to plug any
// training::TrafficModel into the same pipeline.

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/gwnet.h"
#include "baselines/var_model.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/trainer.h"

int main() {
  namespace data = ::sstban::data;
  namespace training = ::sstban::training;
  namespace model_ns = ::sstban::sstban;

  data::SyntheticWorldConfig world = data::Pems04LikeConfig();
  world.num_nodes = 16;
  world.num_days = 8;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  std::printf("world: %s, %lld steps (15-min), %lld detectors\n",
              dataset->name.c_str(), static_cast<long long>(dataset->num_steps()),
              static_cast<long long>(dataset->num_nodes()));

  // P = Q = 12 slices = 3 hours in / 3 hours out.
  data::WindowDataset windows(dataset, 12, 12);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);

  training::TrainerConfig trainer_config;
  trainer_config.max_epochs = 4;
  trainer_config.batch_size = 8;
  trainer_config.learning_rate = 5e-3f;
  training::Trainer trainer(trainer_config);

  // Assemble the contestants behind the shared TrafficModel interface.
  model_ns::SstbanConfig config;
  config.num_nodes = dataset->num_nodes();
  config.input_len = 12;
  config.output_len = 12;
  config.num_features = 1;
  config.steps_per_day = dataset->steps_per_day;
  config.hidden_dim = 16;
  config.num_heads = 4;
  config.encoder_blocks = 2;
  config.decoder_blocks = 2;
  config.patch_len = 3;
  config.mask_rate = 0.25;
  config.lambda = 0.1;

  std::vector<std::unique_ptr<training::TrafficModel>> contestants;
  contestants.push_back(std::make_unique<model_ns::SstbanModel>(config));
  contestants.push_back(std::make_unique<sstban::baselines::GwnetLite>(
      *dataset->graph, 1, 12, 16, 2));
  contestants.push_back(std::make_unique<sstban::baselines::VarModel>(3));

  std::printf("\n%-10s %10s %10s %10s %12s\n", "model", "MAE", "RMSE", "MAPE%",
              "train(s)");
  for (auto& model : contestants) {
    training::TrainStats stats =
        trainer.Train(model.get(), windows, split, normalizer);
    training::EvalResult eval =
        training::Evaluate(model.get(), windows, split.test, normalizer, 8);
    std::printf("%-10s %10.2f %10.2f %9.2f%% %12.1f\n", model->name().c_str(),
                eval.overall.mae, eval.overall.rmse, eval.overall.mape,
                stats.total_train_seconds);
  }
  return 0;
}

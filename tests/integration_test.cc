// End-to-end integration: train SSTBAN and baselines on a tiny synthetic
// world and verify the learning signal is real — trained models beat the
// historical average, the self-supervised branch trains without divergence,
// and the full pipeline (world -> windows -> normalize -> train -> eval)
// holds together.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/historical_average.h"
#include "baselines/var_model.h"
#include "data/synthetic_world.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/trainer.h"

namespace sstban {
namespace {

struct Pipeline {
  std::shared_ptr<data::TrafficDataset> dataset;
  std::unique_ptr<data::WindowDataset> windows;
  data::SplitIndices split;
  data::Normalizer normalizer;
};

Pipeline MakePipeline() {
  data::SyntheticWorldConfig config;
  config.num_nodes = 6;
  config.num_corridors = 2;
  config.steps_per_day = 24;
  config.num_days = 14;
  config.seed = 2024;
  Pipeline p;
  p.dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
  p.windows = std::make_unique<data::WindowDataset>(p.dataset, 12, 12);
  p.split = data::ChronologicalSplit(*p.windows);
  p.normalizer = data::Normalizer::Fit(p.dataset->signals);
  return p;
}

training::TrainerConfig FastTrainer() {
  training::TrainerConfig config;
  config.max_epochs = 4;
  config.batch_size = 16;
  config.learning_rate = 2e-3f;
  return config;
}

TEST(IntegrationTest, SstbanBeatsHistoricalAverage) {
  Pipeline p = MakePipeline();

  baselines::HistoricalAverage ha;
  training::EvalResult ha_result =
      training::Evaluate(&ha, *p.windows, p.split.test, p.normalizer, 16);

  sstban::SstbanConfig config;
  config.num_nodes = p.dataset->num_nodes();
  config.input_len = 12;
  config.output_len = 12;
  config.num_features = 1;
  config.steps_per_day = p.dataset->steps_per_day;
  config.hidden_dim = 8;
  config.num_heads = 4;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 3;
  config.mask_rate = 0.2;
  config.lambda = 0.1;
  sstban::SstbanModel model(config);

  training::Trainer trainer(FastTrainer());
  training::TrainStats stats =
      trainer.Train(&model, *p.windows, p.split, p.normalizer);
  EXPECT_GT(stats.epochs_run, 0);
  EXPECT_GT(stats.peak_memory_bytes, 0);

  training::EvalResult sstban_result =
      training::Evaluate(&model, *p.windows, p.split.test, p.normalizer, 16);
  EXPECT_LT(sstban_result.overall.mae, ha_result.overall.mae)
      << "SSTBAN " << sstban_result.overall.ToString() << " vs HA "
      << ha_result.overall.ToString();
}

TEST(IntegrationTest, SelfSupervisedLossDecreasesDuringTraining) {
  Pipeline p = MakePipeline();
  sstban::SstbanConfig config;
  config.num_nodes = p.dataset->num_nodes();
  config.input_len = 12;
  config.output_len = 12;
  config.num_features = 1;
  config.steps_per_day = p.dataset->steps_per_day;
  config.hidden_dim = 8;
  config.num_heads = 4;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 3;
  config.mask_rate = 0.3;
  config.lambda = 0.5;
  sstban::SstbanModel model(config);
  training::Trainer trainer(FastTrainer());
  training::TrainStats stats =
      trainer.Train(&model, *p.windows, p.split, p.normalizer);
  ASSERT_GE(stats.epoch_train_loss.size(), 2u);
  EXPECT_LT(stats.epoch_train_loss.back(), stats.epoch_train_loss.front());
}

TEST(IntegrationTest, VarBeatsHistoricalAverageOnShortHorizon) {
  Pipeline p = MakePipeline();
  baselines::HistoricalAverage ha;
  baselines::VarModel var(3);
  training::Trainer trainer(FastTrainer());
  trainer.Train(&var, *p.windows, p.split, p.normalizer);
  training::EvalResult ha_result = training::Evaluate(
      &ha, *p.windows, p.split.test, p.normalizer, 16, /*per_horizon=*/true);
  training::EvalResult var_result = training::Evaluate(
      &var, *p.windows, p.split.test, p.normalizer, 16, /*per_horizon=*/true);
  // VAR excels at the first step (near-Markov structure).
  EXPECT_LT(var_result.per_horizon.front().mae,
            ha_result.per_horizon.front().mae);
}

TEST(IntegrationTest, TrainingIsDeterministicGivenSeeds) {
  Pipeline p = MakePipeline();
  auto run_once = [&]() {
    sstban::SstbanConfig config;
    config.num_nodes = p.dataset->num_nodes();
    config.input_len = 12;
    config.output_len = 12;
    config.num_features = 1;
    config.steps_per_day = p.dataset->steps_per_day;
    config.hidden_dim = 4;
    config.num_heads = 2;
    config.encoder_blocks = 1;
    config.decoder_blocks = 1;
    config.patch_len = 3;
    config.seed = 7;
    sstban::SstbanModel model(config);
    training::TrainerConfig tc = FastTrainer();
    tc.max_epochs = 1;
    tc.seed = 99;
    training::Trainer trainer(tc);
    training::TrainStats stats =
        trainer.Train(&model, *p.windows, p.split, p.normalizer);
    return stats.epoch_train_loss.front();
  };
  EXPECT_FLOAT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sstban

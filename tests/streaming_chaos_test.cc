// Chaos properties of shadow-gated promotion, pinned under randomized
// injected-fault schedules and concurrent serving traffic:
//   1. the serving incumbent is never replaced by a candidate whose shadow
//      score is not strictly better — the installed model's true error is
//      monotone non-increasing no matter which faults fire;
//   2. every in-flight request reaches exactly one terminal status while
//      promotions and rollbacks hot-swap the registry underneath the server;
//   3. a sustained post-promotion live regression always rolls back (the
//      rollback path is failpoint-free by design).
// The suite tolerates an ambient SSTBAN_FAILPOINTS schedule from the CI
// fault matrix: assertions that require a fault-free environment are relaxed
// to their guarded forms when one is present.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "streaming/promotion.h"
#include "tensor/tensor.h"
#include "training/model.h"

namespace sstban::streaming {
namespace {

namespace t = ::sstban::tensor;
namespace ag = ::sstban::autograd;

constexpr int64_t kNodes = 4;
constexpr int64_t kFeatures = 1;
constexpr int64_t kSteps = 6;
constexpr int64_t kStepsPerDay = 12;
constexpr float kTruth = 3.0f;  // the world is constant kTruth everywhere

bool AmbientFaults() {
  const char* env = std::getenv("SSTBAN_FAILPOINTS");
  return env != nullptr && *env != '\0';
}

// Forecasts a constant, so true serving MAE is exactly |bias - kTruth| and
// the monotonicity property can be checked against ground truth.
class BiasModel : public training::TrafficModel {
 public:
  explicit BiasModel(float bias = 0.0f) {
    bias_ = RegisterParameter("bias", t::Tensor::Full(t::Shape{1}, bias));
  }
  ag::Variable Predict(const t::Tensor& x_norm,
                       const data::Batch& batch) override {
    return ag::Variable(t::Tensor::Full(
        t::Shape{x_norm.dim(0), batch.output_len(), x_norm.dim(2),
                 x_norm.dim(3)},
        bias_.value().data()[0]));
  }
  std::string name() const override { return "Bias"; }
  float bias() const { return bias_.value().data()[0]; }

 private:
  ag::Variable bias_;
};

struct ChaosRig {
  std::shared_ptr<data::TrafficDataset> dataset;
  std::unique_ptr<data::WindowDataset> windows;
  data::Normalizer normalizer = data::Normalizer::FromMoments({0.0f}, {1.0f});
  serving::ModelRegistry::ModelFactory factory;
  std::unique_ptr<serving::ModelRegistry> registry;
  std::vector<int64_t> shadow_indices = {0, 1, 2};
};

ChaosRig MakeRig(float incumbent_bias) {
  ChaosRig rig;
  data::TrafficDataset dataset;
  dataset.name = "const";
  dataset.steps_per_day = kStepsPerDay;
  const int64_t steps = 3 * kSteps;
  dataset.signals =
      t::Tensor::Full(t::Shape{steps, kNodes, kFeatures}, kTruth);
  dataset.time_of_day.resize(steps);
  dataset.day_of_week.resize(steps);
  for (int64_t i = 0; i < steps; ++i) {
    dataset.time_of_day[i] = i % kStepsPerDay;
    dataset.day_of_week[i] = (i / kStepsPerDay) % 7;
  }
  rig.dataset = std::make_shared<data::TrafficDataset>(std::move(dataset));
  rig.windows =
      std::make_unique<data::WindowDataset>(rig.dataset, kSteps, kSteps);
  rig.factory = [] { return std::make_unique<BiasModel>(); };
  rig.registry =
      std::make_unique<serving::ModelRegistry>(rig.factory, rig.normalizer);
  rig.registry->Install(std::make_unique<BiasModel>(incumbent_bias));
  return rig;
}

float ServedBias(const serving::ModelRegistry& registry) {
  auto served = registry.current();
  return static_cast<const BiasModel*>(served->model.get())->bias();
}

double TrueMae(float bias) { return std::abs(bias - kTruth); }

TEST(StreamingChaosTest, IncumbentErrorIsMonotoneUnderEverySchedule) {
  ChaosRig rig = MakeRig(/*incumbent_bias=*/0.0f);
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  PromotionGate gate(PromotionGateOptions{}, rig.registry.get(), rig.factory);

  // A deterministic mix of candidate qualities and fault schedules. The
  // per-round Clear of the two gate failpoints also clears any ambient
  // arming of those names after the first round; every other ambient
  // failpoint stays live for the whole loop.
  const std::vector<std::string> schedules = {
      "",
      "shadow_eval=error(kUnavailable)@1",  // candidate unscorable
      "shadow_eval=error(kUnavailable)@2",  // incumbent unscorable
      "shadow_eval=error(kInternal)",       // everything unscorable
      "promote_swap=error(kIoError)@1",     // the swap itself faults
      "promote_swap=crash@99999",           // armed but never fires
  };
  core::Rng rng(123);
  int64_t expected_version = rig.registry->current_version();
  for (int round = 0; round < 48; ++round) {
    const float candidate_bias =
        -5.0f + 13.0f * static_cast<float>(rng.NextDouble());
    const std::string& schedule =
        schedules[rng.NextBelow(static_cast<uint32_t>(schedules.size()))];
    if (!schedule.empty()) {
      ASSERT_TRUE(core::FailPoint::SetFromList(schedule).ok());
    }

    const float bias_before = ServedBias(*rig.registry);
    auto decision = gate.TryPromote(
        std::make_unique<BiasModel>(candidate_bias), *rig.windows,
        rig.shadow_indices, rig.normalizer, evaluator);
    core::FailPoint::Clear("shadow_eval");
    core::FailPoint::Clear("promote_swap");
    ASSERT_TRUE(decision.ok());

    const float bias_after = ServedBias(*rig.registry);
    if (decision.value().promoted) {
      // A promotion must be justified by the scores it recorded.
      EXPECT_LT(decision.value().candidate_score,
                decision.value().incumbent_score);
      // When the incumbent was genuinely measured, winning on the shadow
      // score means winning on true error too (in this rig score == truth).
      // An *unmeasurable* incumbent (injected scoring fault) is deliberately
      // treated as infinitely bad — promotion is the recovery path — so only
      // the finite case pins monotonicity.
      if (std::isfinite(decision.value().incumbent_score)) {
        EXPECT_LT(TrueMae(bias_after), TrueMae(bias_before))
            << "round " << round << " (schedule '" << schedule
            << "') made serving worse on a measured comparison";
      }
      ++expected_version;
    } else {
      EXPECT_EQ(bias_after, bias_before) << "refusal must not touch serving";
    }
    EXPECT_EQ(rig.registry->current_version(), expected_version)
        << "registry version moved without a winning decision";
  }
  EXPECT_EQ(gate.promotions() + gate.refusals(), 48);
}

TEST(StreamingChaosTest, RegressionAfterPromotionAlwaysRollsBack) {
  ChaosRig rig = MakeRig(/*incumbent_bias=*/1.0f);
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  PromotionGateOptions options;
  options.rollback_after = 2;
  PromotionGate gate(options, rig.registry.get(), rig.factory);

  auto decision =
      gate.TryPromote(std::make_unique<BiasModel>(2.5f), *rig.windows,
                      rig.shadow_indices, rig.normalizer, evaluator);
  ASSERT_TRUE(decision.ok());
  if (!decision.value().promoted) {
    // Only an ambient fault schedule can refuse this strictly-better
    // candidate; under a clean environment the promotion must happen.
    ASSERT_TRUE(AmbientFaults()) << decision.value().reason;
    return;
  }
  // The model regressed in live traffic. The rollback path has no failpoint
  // by design, so this must succeed even under an ambient fault schedule.
  EXPECT_FALSE(gate.ObserveLive(1e9));
  EXPECT_TRUE(gate.ObserveLive(1e9));
  EXPECT_EQ(gate.rollbacks(), 1);
  EXPECT_FLOAT_EQ(ServedBias(*rig.registry), 1.0f);
  EXPECT_EQ(rig.registry->current()->source, "rollback");
}

TEST(StreamingChaosTest, EveryRequestReachesExactlyOneTerminalAcrossSwaps) {
  ChaosRig rig = MakeRig(/*incumbent_bias=*/0.0f);

  serving::ServerOptions server_options;
  server_options.input_len = kSteps;
  server_options.output_len = kSteps;
  server_options.steps_per_day = kStepsPerDay;
  server_options.num_nodes = kNodes;
  server_options.num_features = kFeatures;
  server_options.max_batch = 4;
  server_options.max_wait = std::chrono::microseconds(200);
  server_options.queue_capacity = 64;
  serving::ForecastServer server(server_options, rig.registry.get());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::atomic<int> terminal{0}, bad{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        serving::ForecastRequest request;
        request.recent =
            t::Tensor::Full(t::Shape{kSteps, kNodes, kFeatures}, kTruth);
        request.first_step = c * kPerClient + i;
        auto submitted = server.Submit(std::move(request));
        if (!submitted.ok()) {
          // Load shed at the door is a legitimate terminal.
          (submitted.status().code() == core::StatusCode::kUnavailable
               ? terminal
               : bad)
              .fetch_add(1);
          continue;
        }
        serving::ForecastResult result = submitted.value().get();
        const bool allowed =
            result.ok() ||
            result.status().code() == core::StatusCode::kUnavailable ||
            result.status().code() == core::StatusCode::kDeadlineExceeded;
        (allowed ? terminal : bad).fetch_add(1);
      }
    });
  }

  // Meanwhile: promotions, refusals, faulted swaps, and rollbacks hot-swap
  // the registry under the serving path.
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  PromotionGateOptions gate_options;
  gate_options.rollback_after = 1;
  PromotionGate gate(gate_options, rig.registry.get(), rig.factory);
  core::Rng rng(7);
  for (int round = 0; round < 24; ++round) {
    const float candidate_bias =
        -2.0f + 7.0f * static_cast<float>(rng.NextDouble());
    if (rng.NextBelow(4) == 0) {
      ASSERT_TRUE(
          core::FailPoint::Set("promote_swap", "error(kIoError)@1").ok());
    }
    auto decision = gate.TryPromote(
        std::make_unique<BiasModel>(candidate_bias), *rig.windows,
        rig.shadow_indices, rig.normalizer, evaluator);
    core::FailPoint::Clear("promote_swap");
    ASSERT_TRUE(decision.ok());
    if (decision.value().promoted && rng.NextBelow(2) == 0) {
      gate.ObserveLive(1e9);  // immediate regression: rollback mid-traffic
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (std::thread& client : clients) client.join();
  server.Shutdown();
  EXPECT_EQ(terminal.load() + bad.load(), kClients * kPerClient);
  EXPECT_EQ(bad.load(), 0) << "some request reached a disallowed terminal";
  EXPECT_EQ(terminal.load(), kClients * kPerClient);
  // The serving model at the end is one the gate audited: its true error is
  // no worse than where the fleet started.
  EXPECT_LE(TrueMae(ServedBias(*rig.registry)), TrueMae(0.0f));
}

}  // namespace
}  // namespace sstban::streaming

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "gradcheck.h"
#include "nn/attention.h"
#include "sstban/bottleneck_attention.h"
#include "sstban/config.h"
#include "sstban/decoders.h"
#include "sstban/encoder.h"
#include "sstban/model.h"
#include "sstban/stba_block.h"
#include "sstban/ste.h"
#include "sstban/transform_attention.h"
#include "tensor/ops.h"

namespace sstban::sstban {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

t::Tensor Rand(t::Shape shape, uint64_t seed) {
  core::Rng rng(seed);
  return t::Tensor::RandomNormal(std::move(shape), rng, 0.0f, 0.5f);
}

SstbanConfig TinyConfig() {
  SstbanConfig c;
  c.num_nodes = 5;
  c.input_len = 8;
  c.output_len = 8;
  c.num_features = 1;
  c.steps_per_day = 12;
  c.hidden_dim = 4;
  c.num_heads = 2;
  c.encoder_blocks = 1;
  c.decoder_blocks = 1;
  c.recon_blocks = 1;
  c.temporal_refs = 2;
  c.spatial_refs = 2;
  c.patch_len = 2;
  c.mask_rate = 0.3;
  c.lambda = 0.2;
  return c;
}

data::Batch TinyBatch(const SstbanConfig& c, int64_t batch_size) {
  data::Batch batch;
  core::Rng rng(42);
  batch.x = t::Tensor::RandomNormal(
      t::Shape{batch_size, c.input_len, c.num_nodes, c.num_features}, rng);
  batch.y = t::Tensor::RandomNormal(
      t::Shape{batch_size, c.output_len, c.num_nodes, c.num_features}, rng);
  for (int64_t i = 0; i < batch_size * c.input_len; ++i) {
    batch.tod_in.push_back(i % c.steps_per_day);
    batch.dow_in.push_back((i / c.steps_per_day) % 7);
  }
  for (int64_t i = 0; i < batch_size * c.output_len; ++i) {
    batch.tod_out.push_back((i + 3) % c.steps_per_day);
    batch.dow_out.push_back(((i + 3) / c.steps_per_day) % 7);
  }
  return batch;
}

TEST(ConfigTest, ValidateAcceptsDefaults) {
  SstbanConfig c = TinyConfig();
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ConfigTest, ValidateRejectsBadValues) {
  SstbanConfig c = TinyConfig();
  c.num_nodes = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = TinyConfig();
  c.mask_rate = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  c = TinyConfig();
  c.lambda = -0.1;
  EXPECT_FALSE(c.Validate().ok());
  c = TinyConfig();
  c.use_bottleneck = true;
  c.temporal_refs = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ConfigTest, TableIiiPresetsMatchPaper) {
  SstbanConfig c = TableIiiConfig("seattle-36");
  EXPECT_EQ(c.input_len, 36);
  EXPECT_EQ(c.encoder_blocks, 2);
  EXPECT_EQ(c.hidden_dim, 8);
  EXPECT_EQ(c.num_heads, 16);
  EXPECT_EQ(c.patch_len, 18);
  EXPECT_DOUBLE_EQ(c.mask_rate, 0.5);
  EXPECT_DOUBLE_EQ(c.lambda, 0.5);
  c = TableIiiConfig("pems08-48");
  EXPECT_EQ(c.encoder_blocks, 3);
  EXPECT_EQ(c.patch_len, 24);
  EXPECT_EQ(c.temporal_refs, 3);
  EXPECT_EQ(c.recon_blocks, 1);
}

TEST(SteTest, OutputShapeAndBroadcastStructure) {
  core::Rng rng(1);
  SpatialTemporalEmbedding ste(4, 12, 6, rng);
  std::vector<int64_t> tod = {0, 1, 2, 3, 4, 5};
  std::vector<int64_t> dow = {0, 0, 0, 1, 1, 1};
  ag::Variable e = ste.Forward(tod, dow, /*batch=*/2, /*len=*/3);
  EXPECT_EQ(e.shape(), t::Shape({2, 3, 4, 6}));
  // Same (tod, dow) and same node -> identical embedding. tod[0] with
  // dow[0] appears only once here, so instead check that node structure is
  // shared: E[b,l,v] - E[b,l,w] must be constant across (b,l).
  t::Tensor diff01 = t::Sub(t::Slice(e.value(), 2, 0, 1),
                            t::Slice(e.value(), 2, 1, 1));
  t::Tensor first = t::Slice(t::Slice(diff01, 0, 0, 1), 1, 0, 1);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t l = 0; l < 3; ++l) {
      t::Tensor cell = t::Slice(t::Slice(diff01, 0, b, 1), 1, l, 1);
      EXPECT_TRUE(t::AllClose(cell, first, 1e-5f, 1e-5f));
    }
  }
}

TEST(SteTest, SameCalendarGivesSameTemporalEmbedding) {
  core::Rng rng(2);
  SpatialTemporalEmbedding ste(3, 10, 4, rng);
  std::vector<int64_t> tod = {5, 5};
  std::vector<int64_t> dow = {2, 2};
  ag::Variable e = ste.Forward(tod, dow, 1, 2);
  EXPECT_TRUE(t::AllClose(t::Slice(e.value(), 1, 0, 1),
                          t::Slice(e.value(), 1, 1, 1), 1e-6f, 1e-6f));
}

TEST(BottleneckAttentionTest, ShapeAndFiniteness) {
  core::Rng rng(3);
  BottleneckAttention attn(/*in_dim=*/8, /*out_dim=*/4, /*num_refs=*/3,
                           /*num_heads=*/2, rng);
  ag::Variable x(Rand({6, 10, 8}, 4));
  ag::Variable y = attn.Forward(x);
  EXPECT_EQ(y.shape(), t::Shape({6, 10, 4}));
  EXPECT_FALSE(t::HasNonFinite(y.value()));
}

TEST(BottleneckAttentionTest, MaskedElementsDoNotLeakIntoReferences) {
  core::Rng rng(5);
  BottleneckAttention attn(4, 4, 2, 2, rng);
  t::Tensor x = Rand({1, 6, 4}, 6);
  t::Tensor mask = t::Tensor::Ones(t::Shape{1, 6});
  mask.at({0, 3}) = 0.0f;
  ag::Variable out1 = attn.Forward(ag::Variable(x), &mask);
  t::Tensor x2 = x.Clone();
  x2.at({0, 3, 0}) += 100.0f;  // perturb the masked element's content
  ag::Variable out2 = attn.Forward(ag::Variable(x2), &mask);
  // Outputs at other positions must be unchanged: the masked element was
  // never aggregated into the reference points. (Position 3's own output
  // row changes because it still issues a query from its perturbed state.)
  for (int64_t pos : {0, 1, 2, 4, 5}) {
    EXPECT_TRUE(t::AllClose(t::Slice(out1.value(), 1, pos, 1),
                            t::Slice(out2.value(), 1, pos, 1), 1e-4f, 1e-4f))
        << "position " << pos;
  }
}

TEST(BottleneckAttentionTest, ComplexityIsLinearInSequenceLength) {
  // The bottleneck keeps the score matrices at [L, R]; doubling L must not
  // square the number of score entries. We verify functionally: runtime is
  // not the contract here, but the op-level shapes are — a full attention
  // would need [L, L]. We approximate by checking the module works at a
  // sequence length where quadratic storage would be large but linear is
  // trivial.
  core::Rng rng(7);
  BottleneckAttention attn(4, 4, 2, 2, rng);
  ag::Variable x(Rand({1, 2048, 4}, 8));
  ag::Variable y = attn.Forward(x);
  EXPECT_EQ(y.dim(1), 2048);
}

TEST(FullSelfAttentionTest, MatchesInterface) {
  core::Rng rng(9);
  FullSelfAttention attn(8, 4, 2, rng);
  ag::Variable x(Rand({2, 5, 8}, 10));
  EXPECT_EQ(attn.Forward(x).shape(), t::Shape({2, 5, 4}));
}

TEST(StbaBlockTest, PreservesShape) {
  core::Rng rng(11);
  StbaBlock block(4, 2, 2, 2, /*use_bottleneck=*/true, rng);
  ag::Variable h(Rand({2, 6, 5, 4}, 12));
  ag::Variable e(Rand({2, 6, 5, 4}, 13));
  ag::Variable out = block.Forward(h, e);
  EXPECT_EQ(out.shape(), t::Shape({2, 6, 5, 4}));
}

TEST(StbaBlockTest, FullAttentionVariantPreservesShape) {
  core::Rng rng(14);
  StbaBlock block(4, 2, 2, 2, /*use_bottleneck=*/false, rng);
  ag::Variable h(Rand({2, 6, 5, 4}, 15));
  ag::Variable e(Rand({2, 6, 5, 4}, 16));
  EXPECT_EQ(block.Forward(h, e).shape(), t::Shape({2, 6, 5, 4}));
}

TEST(StbaBlockTest, ResidualConnectionPresent) {
  // Scaling the input H also shifts the output through the residual path:
  // out - H must equal the attention contribution, so out != attention
  // output alone. Cheap check: with zeroed attention impossible, verify
  // out differs from block(H, E) - H recomputation consistency instead.
  core::Rng rng(17);
  StbaBlock block(4, 2, 2, 2, true, rng);
  ag::Variable h(Rand({1, 4, 3, 4}, 18));
  ag::Variable e(Rand({1, 4, 3, 4}, 19));
  ag::Variable out1 = block.Forward(h, e);
  ag::Variable out2 = block.Forward(h, e);
  // Deterministic forward.
  EXPECT_TRUE(t::AllClose(out1.value(), out2.value()));
  // Residual: adding delta to H adds at least delta's direction to out.
  t::Tensor delta = t::Tensor::Full(h.shape(), 0.5f);
  ag::Variable h2(t::Add(h.value(), delta));
  ag::Variable out3 = block.Forward(h2, e);
  // The difference must be nonzero and correlated with delta (residual
  // passes it straight through plus attention changes).
  t::Tensor diff = t::Sub(out3.value(), out1.value());
  EXPECT_GT(t::MeanAll(diff).item(), 0.1f);
}

TEST(StbaBlockTest, GradientsFlowToAllParameters) {
  core::Rng rng(20);
  StbaBlock block(4, 2, 2, 2, true, rng);
  ag::Variable h(Rand({1, 4, 3, 4}, 21));
  ag::Variable e(Rand({1, 4, 3, 4}, 22));
  ag::SumAll(ag::Square(block.Forward(h, e))).Backward();
  for (auto& [name, p] : block.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

// End-to-end gradcheck through the attention primitive every SSTBAN block is
// built from: softmax + batched matmuls + head reshuffles, with asymmetric
// query/kv/output dims so every projection is exercised at a distinct size.
TEST(MultiHeadAttentionTest, InputGradientsMatchFiniteDifferences) {
  core::Rng rng(31);
  nn::MultiHeadAttention mha(/*query_dim=*/3, /*kv_dim=*/3, /*out_dim=*/4,
                             /*num_heads=*/2, rng);
  ::sstban::testing::ExpectGradientsMatch(
      [&](std::vector<ag::Variable>& leaves) {
        return ag::SumAll(
            ag::Square(mha.Forward(leaves[0], leaves[1], leaves[2])));
      },
      {Rand({1, 2, 3}, 32), Rand({1, 3, 3}, 33), Rand({1, 3, 3}, 34)});
}

TEST(MultiHeadAttentionTest, ParameterGradientsMatchFiniteDifferences) {
  core::Rng rng(35);
  nn::MultiHeadAttention mha(/*query_dim=*/3, /*kv_dim=*/3, /*out_dim=*/4,
                             /*num_heads=*/2, rng);
  ag::Variable q(Rand({1, 2, 3}, 36));
  ag::Variable k(Rand({1, 3, 3}, 37));
  ag::Variable v(Rand({1, 3, 3}, 38));
  ::sstban::testing::ExpectParameterGradientsMatch(
      [&] { return ag::SumAll(ag::Square(mha.Forward(q, k, v))); },
      mha.Parameters());
}

// Full StbaBlock gradcheck: bottleneck attention (both stages), feed-forward,
// residual and norm layers in one graph, against finite differences on both
// the hidden state and the spatial-temporal embedding.
TEST(StbaBlockTest, InputGradientsMatchFiniteDifferences) {
  core::Rng rng(41);
  StbaBlock block(/*dim=*/2, /*num_heads=*/1, /*temporal_refs=*/2,
                  /*spatial_refs=*/2, /*use_bottleneck=*/true, rng);
  ::sstban::testing::ExpectGradientsMatch(
      [&](std::vector<ag::Variable>& leaves) {
        return ag::MeanAll(ag::Square(block.Forward(leaves[0], leaves[1])));
      },
      {Rand({1, 2, 2, 2}, 42), Rand({1, 2, 2, 2}, 43)});
}

TEST(StbaBlockTest, ParameterGradientsMatchFiniteDifferences) {
  core::Rng rng(44);
  StbaBlock block(/*dim=*/2, /*num_heads=*/1, /*temporal_refs=*/2,
                  /*spatial_refs=*/2, /*use_bottleneck=*/true, rng);
  ag::Variable h(Rand({1, 2, 2, 2}, 45));
  ag::Variable e(Rand({1, 2, 2, 2}, 46));
  ::sstban::testing::ExpectParameterGradientsMatch(
      [&] { return ag::MeanAll(ag::Square(block.Forward(h, e))); },
      block.Parameters(), /*eps=*/1e-2f, /*tol=*/2e-2f,
      /*max_probes_per_param=*/6);
}

TEST(TransformAttentionTest, ConvertsTemporalLength) {
  core::Rng rng(23);
  TransformAttention ta(4, 2, rng);
  ag::Variable e_out(Rand({2, 7, 3, 4}, 24));  // Q=7
  ag::Variable e_in(Rand({2, 5, 3, 4}, 25));   // P=5
  ag::Variable h(Rand({2, 5, 3, 4}, 26));
  ag::Variable out = ta.Forward(e_out, e_in, h);
  EXPECT_EQ(out.shape(), t::Shape({2, 7, 3, 4}));
}

TEST(EncoderTest, ProducesLatentOfWidthD) {
  SstbanConfig c = TinyConfig();
  core::Rng rng(c.seed);
  StEncoder encoder(c, rng);
  data::Batch batch = TinyBatch(c, 2);
  SpatialTemporalEmbedding ste(c.num_nodes, c.steps_per_day, c.hidden_dim, rng);
  ag::Variable e = ste.Forward(batch.tod_in, batch.dow_in, 2, c.input_len);
  ag::Variable h = encoder.Forward(ag::Variable(batch.x), e);
  EXPECT_EQ(h.shape(),
            t::Shape({2, c.input_len, c.num_nodes, c.hidden_dim}));
}

TEST(ReconstructingDecoderTest, MaskTokenFillsMaskedPositions) {
  SstbanConfig c = TinyConfig();
  core::Rng rng(31);
  StReconstructingDecoder decoder(c, rng);
  int64_t b = 1, p = c.input_len, n = c.num_nodes, d = c.hidden_dim;
  ag::Variable encoded(Rand({b, p, n, d}, 32));
  ag::Variable e(Rand({b, p, n, d}, 33));
  t::Tensor keep = t::Tensor::Ones(t::Shape{b, p, n, 1});
  keep.at({0, 2, 1, 0}) = 0.0f;
  ag::Variable out = decoder.Forward(encoded, e, keep);
  EXPECT_EQ(out.shape(), t::Shape({b, p, n, d}));
  EXPECT_FALSE(t::HasNonFinite(out.value()));
  // Changing the encoder latent at the masked position must not change
  // anything (it was replaced by the mask token before the blocks).
  t::Tensor encoded2 = encoded.value().Clone();
  encoded2.at({0, 2, 1, 0}) += 50.0f;
  ag::Variable out2 = decoder.Forward(ag::Variable(encoded2), e, keep);
  EXPECT_TRUE(t::AllClose(out.value(), out2.value(), 1e-4f, 1e-4f));
}

TEST(SstbanModelTest, PredictShape) {
  SstbanConfig c = TinyConfig();
  SstbanModel model(c);
  data::Batch batch = TinyBatch(c, 3);
  ag::Variable pred = model.Predict(batch.x, batch);
  EXPECT_EQ(pred.shape(),
            t::Shape({3, c.output_len, c.num_nodes, c.num_features}));
  EXPECT_FALSE(t::HasNonFinite(pred.value()));
}

TEST(SstbanModelTest, TwoBranchLossesAreFiniteAndCombined) {
  SstbanConfig c = TinyConfig();
  SstbanModel model(c);
  model.SetTraining(true);
  data::Batch batch = TinyBatch(c, 2);
  auto out = model.ForwardTwoBranch(batch.x, batch.y, batch);
  ASSERT_TRUE(out.alignment_loss.defined());
  float fc = out.forecast_loss.item();
  float al = out.alignment_loss.item();
  float total = out.total_loss.item();
  EXPECT_TRUE(std::isfinite(fc));
  EXPECT_TRUE(std::isfinite(al));
  float lambda = static_cast<float>(c.lambda);
  EXPECT_NEAR(total, (1 - lambda) * fc + lambda * al, 1e-4f);
}

TEST(SstbanModelTest, EvalModeSkipsSelfSupervisedBranch) {
  SstbanConfig c = TinyConfig();
  SstbanModel model(c);
  model.SetTraining(false);
  data::Batch batch = TinyBatch(c, 2);
  auto out = model.ForwardTwoBranch(batch.x, batch.y, batch);
  EXPECT_FALSE(out.alignment_loss.defined());
  EXPECT_FLOAT_EQ(out.total_loss.item(), out.forecast_loss.item());
}

TEST(SstbanModelTest, SelfSupervisedOffMatchesForecastLoss) {
  SstbanConfig c = TinyConfig();
  c.self_supervised = false;
  SstbanModel model(c);
  data::Batch batch = TinyBatch(c, 2);
  auto out = model.ForwardTwoBranch(batch.x, batch.y, batch);
  EXPECT_FLOAT_EQ(out.total_loss.item(), out.forecast_loss.item());
}

TEST(SstbanModelTest, BackwardReachesEveryParameter) {
  SstbanConfig c = TinyConfig();
  SstbanModel model(c);
  data::Batch batch = TinyBatch(c, 2);
  ag::Variable loss = model.TrainingLoss(batch.x, batch.y, batch);
  model.ZeroGrad();
  loss.Backward();
  int64_t with_grad = 0, total = 0;
  for (auto& [name, p] : model.NamedParameters()) {
    ++total;
    if (p.has_grad()) ++with_grad;
  }
  // Every parameter participates in the two-branch loss.
  EXPECT_EQ(with_grad, total);
}

TEST(SstbanModelTest, DetachAlignmentTargetControlsGradientPath) {
  // With detach on (default), the alignment loss alone must NOT produce
  // gradients in the forecasting decoder, but still trains the encoder via
  // the masked pathway.
  SstbanConfig c = TinyConfig();
  c.detach_alignment_target = true;
  SstbanModel model(c);
  data::Batch batch = TinyBatch(c, 2);
  auto out = model.ForwardTwoBranch(batch.x, batch.y, batch);
  model.ZeroGrad();
  out.alignment_loss.Backward();
  bool reconstructor_has_grad = false;
  for (auto& [name, p] : model.NamedParameters()) {
    if (name.find("reconstructor") != std::string::npos && p.has_grad()) {
      reconstructor_has_grad = true;
    }
    if (name.find("decoder") == 0 && p.has_grad()) {
      FAIL() << "forecasting decoder " << name
             << " received gradient from detached alignment loss";
    }
  }
  EXPECT_TRUE(reconstructor_has_grad);
}

TEST(SstbanModelTest, WithoutBottleneckUsesFullAttention) {
  SstbanConfig c = TinyConfig();
  c.use_bottleneck = false;
  SstbanModel model(c);
  EXPECT_EQ(model.name(), "SSTBAN-w/o-STBA");
  data::Batch batch = TinyBatch(c, 2);
  ag::Variable pred = model.Predict(batch.x, batch);
  EXPECT_FALSE(t::HasNonFinite(pred.value()));
}

TEST(SstbanModelTest, DeterministicPrediction) {
  SstbanConfig c = TinyConfig();
  SstbanModel a(c), b(c);
  data::Batch batch = TinyBatch(c, 2);
  EXPECT_TRUE(t::AllClose(a.Predict(batch.x, batch).value(),
                          b.Predict(batch.x, batch).value()));
}

}  // namespace
}  // namespace sstban::sstban

// Kill-and-resume matrix for the online adapter: a subprocess runs one
// adaptation round and is killed by a crash-action failpoint at each stage
// of the checkpoint lifecycle (mid-step, at the checkpoint-write gate, mid
// checkpoint rename); the resumed run must finish with weights — and a final
// persisted checkpoint — bitwise identical to an uninterrupted round, at
// SSTBAN_NUM_THREADS=1 and 8.
//
// Same worker protocol as checkpoint_crash_test: this binary has its own
// main() and re-execs itself (SSTBAN_CRASH_TEST_WORKER) so the crash kills
// only the worker; fork() is not an option because ThreadPool workers do
// not survive fork.

#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "nn/serialization.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "streaming/online_adapter.h"
#include "training/checkpoint.h"

namespace {
std::string g_binary_path;  // absolute path of this test binary, for re-exec
}  // namespace

namespace sstban {

namespace fs = std::filesystem;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kAdaptSteps = 6;

model_ns::SstbanConfig WorkerModelConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 24;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.seed = 31;
  return config;
}

// One deterministic adaptation round: fixed world, fixed model seed, fixed
// sampling seed — any two workers sharing a checkpoint directory history
// must converge to the same bytes.
int RunCrashTestWorker() {
  const char* dir = std::getenv("SSTBAN_WORKER_CKPT_DIR");
  const char* out = std::getenv("SSTBAN_WORKER_OUT");
  if (dir == nullptr || out == nullptr) {
    std::fprintf(stderr, "worker: missing SSTBAN_WORKER_* env\n");
    return 3;
  }
  data::SyntheticWorldConfig world;
  world.num_nodes = 4;
  world.num_corridors = 2;
  world.steps_per_day = 24;
  world.num_days = 4;
  world.seed = 61;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  data::WindowDataset windows(dataset, 6, 6);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 16; ++i) indices.push_back(i);

  model_ns::SstbanModel model(WorkerModelConfig());
  streaming::OnlineAdapterOptions options;
  options.num_steps = kAdaptSteps;
  options.batch_size = 4;
  options.checkpoint_every_steps = 2;
  options.checkpoint_dir = dir;
  auto report = streaming::OnlineAdapter(options).Adapt(&model, windows,
                                                        indices, normalizer);
  if (!report.ok()) {
    std::fprintf(stderr, "worker: %s\n", report.status().ToString().c_str());
    return 1;
  }
  core::Status saved = nn::SaveParameters(model, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "worker: %s\n", saved.ToString().c_str());
    return 1;
  }
  return 0;
}

namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// `failpoints` always overrides SSTBAN_FAILPOINTS (empty disarms anything
// the CI fault matrix put in the environment), so each worker run injects
// exactly the schedule its scenario asks for.
int LaunchWorker(const std::string& ckpt_dir, const std::string& out,
                 const std::string& failpoints, int num_threads) {
  std::string cmd = "SSTBAN_CRASH_TEST_WORKER=1"
                    " SSTBAN_WORKER_CKPT_DIR='" + ckpt_dir + "'" +
                    " SSTBAN_WORKER_OUT='" + out + "'" +
                    " SSTBAN_FAILPOINTS='" + failpoints + "'" +
                    " SSTBAN_NUM_THREADS=" + std::to_string(num_threads) +
                    " '" + g_binary_path + "'";
  return std::system(cmd.c_str());
}

bool ExitedCleanly(int rc) { return WIFEXITED(rc) && WEXITSTATUS(rc) == 0; }
bool Died(int rc) {
  return WIFSIGNALED(rc) || (WIFEXITED(rc) && WEXITSTATUS(rc) != 0);
}

void KillResumeCompare(const std::string& tag, const std::string& schedule,
                       int num_threads) {
  std::string dir_ref = FreshDir(tag + "_ref");
  std::string out_ref = dir_ref + "/adapted_weights.bin";
  ASSERT_TRUE(ExitedCleanly(LaunchWorker(dir_ref, out_ref, "", num_threads)));

  std::string dir_cut = FreshDir(tag + "_cut");
  std::string out_cut = dir_cut + "/adapted_weights.bin";
  int rc = LaunchWorker(dir_cut, out_cut, schedule, num_threads);
  ASSERT_TRUE(Died(rc)) << "schedule '" << schedule
                        << "' did not kill the worker (rc=" << rc << ")";
  EXPECT_FALSE(fs::exists(out_cut)) << "killed round must not reach the end";
  ASSERT_FALSE(training::ListTrainCheckpoints(dir_cut).empty())
      << "killed round left no checkpoint to resume from";

  ASSERT_TRUE(ExitedCleanly(LaunchWorker(dir_cut, out_cut, "", num_threads)));
  EXPECT_EQ(ReadAll(out_ref), ReadAll(out_cut))
      << "resumed adapted weights diverged from the uninterrupted round";
  // The full persisted adapter state converged too, not just the weights.
  std::string last =
      "/" + training::TrainCheckpointFileName(static_cast<int>(kAdaptSteps));
  EXPECT_EQ(ReadAll(dir_ref + last), ReadAll(dir_cut + last));
}

// Stage 1: killed mid fine-tuning step (the 5th step, past the step-4
// checkpoint).
TEST(StreamingCrashTest, KillMidAdaptStepResumesBitwise) {
  KillResumeCompare("adapt_step", "adapt_step=crash@5", /*num_threads=*/1);
}

TEST(StreamingCrashTest, KillMidAdaptStepResumesBitwiseEightThreads) {
  KillResumeCompare("adapt_step_mt", "adapt_step=crash@5",
                    /*num_threads=*/8);
}

// Stage 2: killed at the checkpoint-write gate itself (the second write,
// i.e. after step 4 ran but before its state persisted): resume falls back
// to the step-2 checkpoint and replays.
TEST(StreamingCrashTest, KillAtCheckpointWriteGateResumesBitwise) {
  KillResumeCompare("ckpt_gate", "adapt_ckpt_write=crash@2",
                    /*num_threads=*/1);
}

TEST(StreamingCrashTest, KillAtCheckpointWriteGateResumesBitwiseEightThreads) {
  KillResumeCompare("ckpt_gate_mt", "adapt_ckpt_write=crash@2",
                    /*num_threads=*/8);
}

// Stage 3: killed inside the checkpoint layer, mid-rename: the step-4
// checkpoint's temp file is orphaned, its final path never appears, and
// resume falls back to step 2 — the atomic-write contract the adapter
// inherits from training::SaveTrainCheckpoint.
TEST(StreamingCrashTest, KillMidCheckpointRenameResumesFromOlderOne) {
  KillResumeCompare("ckpt_rename", "ckpt_rename=crash@2", /*num_threads=*/1);
}

}  // namespace
}  // namespace sstban

int main(int argc, char** argv) {
  g_binary_path = std::filesystem::absolute(argv[0]).string();
  if (std::getenv("SSTBAN_CRASH_TEST_WORKER") != nullptr) {
    return sstban::RunCrashTestWorker();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

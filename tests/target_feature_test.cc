// Tests for per-feature metric selection: the Seattle scenarios input
// three channels (flow, speed, occupancy) but Table IV reports speed-only
// errors, which Evaluate's target_feature argument implements.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/historical_average.h"
#include "data/synthetic_world.h"
#include "training/trainer.h"

namespace sstban::training {
namespace {

std::shared_ptr<data::TrafficDataset> SpeedWorld() {
  data::SyntheticWorldConfig config = data::SeattleLikeConfig();
  config.num_nodes = 6;
  config.num_days = 6;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

TEST(TargetFeatureTest, SpeedChannelMetricsDifferFromAllChannel) {
  auto ds = SpeedWorld();
  data::WindowDataset windows(ds, 12, 12);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  baselines::HistoricalAverage ha;
  EvalResult all = Evaluate(&ha, windows, split.test, norm, 8, false, -1);
  EvalResult speed = Evaluate(&ha, windows, split.test, norm, 8, false, 1);
  EvalResult occupancy = Evaluate(&ha, windows, split.test, norm, 8, false, 2);
  // Flow (hundreds) dominates the all-channel MAE; speed lives in mph and
  // occupancy in [0, 1], so the three aggregates must be ordered.
  EXPECT_GT(all.overall.mae, speed.overall.mae);
  EXPECT_GT(speed.overall.mae, occupancy.overall.mae);
  EXPECT_LT(occupancy.overall.mae, 1.0);
}

TEST(TargetFeatureTest, PerHorizonRespectsTargetFeature) {
  auto ds = SpeedWorld();
  data::WindowDataset windows(ds, 12, 12);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  baselines::HistoricalAverage ha;
  EvalResult speed = Evaluate(&ha, windows, split.test, norm, 8,
                              /*per_horizon=*/true, /*target_feature=*/1);
  ASSERT_EQ(speed.per_horizon.size(), 12u);
  for (const auto& m : speed.per_horizon) {
    EXPECT_GT(m.mae, 0.0);
    EXPECT_LT(m.mae, 80.0);  // on the mph scale, not the flow scale
  }
}

TEST(TargetFeatureTest, TrainerEarlyStopsOnTargetChannel) {
  auto ds = SpeedWorld();
  data::WindowDataset windows(ds, 12, 12);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  baselines::HistoricalAverage ha;
  TrainerConfig config;
  config.target_feature = 1;
  Trainer trainer(config);
  TrainStats stats = trainer.Train(&ha, windows, split, norm);
  // best_val_mae is on the speed scale, not the flow scale.
  EXPECT_LT(stats.best_val_mae, 80.0);
  EXPECT_GT(stats.best_val_mae, 0.1);
}

}  // namespace
}  // namespace sstban::training

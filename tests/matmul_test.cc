#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sstban::tensor {
namespace {

// Reference O(n^3) implementation for validation.
Tensor NaiveMatmul(const Tensor& a, const Tensor& b) {
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::Zeros(Shape{m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t p = 0; p < k; ++p) acc += a.at({i, p}) * b.at({p, j});
      c.at({i, j}) = static_cast<float>(acc);
    }
  return c;
}

// Runs `fn` with ParallelFor capped to `cap` chunks (1 = fully sequential on
// the calling thread), restoring the uncapped default after.
Tensor WithParallelismCap(int cap, const std::function<Tensor()>& fn) {
  core::SetParallelismCapForTesting(cap);
  Tensor result = fn();
  core::SetParallelismCapForTesting(0);
  return result;
}

// Exact float equality, element by element (bitwise for all non-NaN data).
void ExpectIdentical(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  std::vector<float> va = a.ToVector(), vb = b.ToVector();
  for (size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(va[i], vb[i]) << what << " element " << i;
  }
}

TEST(MatmulTest, SmallKnownResult) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = Matmul(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(MatmulTest, IdentityIsNoop) {
  core::Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{5, 5}, rng);
  Tensor eye = Tensor::Zeros(Shape{5, 5});
  for (int64_t i = 0; i < 5; ++i) eye.at({i, i}) = 1.0f;
  EXPECT_TRUE(AllClose(Matmul(a, eye), a, 1e-5f, 1e-5f));
}

TEST(MatmulTest, MatchesNaiveOnRandom) {
  core::Rng rng(2);
  for (auto [m, k, n] : std::vector<std::tuple<int, int, int>>{
           {1, 1, 1}, {3, 7, 5}, {17, 9, 13}, {70, 20, 30}}) {
    Tensor a = Tensor::RandomNormal(Shape{m, k}, rng);
    Tensor b = Tensor::RandomNormal(Shape{k, n}, rng);
    EXPECT_TRUE(AllClose(Matmul(a, b), NaiveMatmul(a, b), 1e-3f, 1e-3f))
        << m << "x" << k << "x" << n;
  }
}

class BmmTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

TEST_P(BmmTransposeTest, MatchesNaivePerBatch) {
  auto [ta, tb, inner] = GetParam();
  core::Rng rng(3 + inner);
  const int64_t batch = 3, m = 5, n = 4;
  int64_t k = inner;
  Shape a_shape = ta ? Shape{batch, k, m} : Shape{batch, m, k};
  Shape b_shape = tb ? Shape{batch, n, k} : Shape{batch, k, n};
  Tensor a = Tensor::RandomNormal(a_shape, rng);
  Tensor b = Tensor::RandomNormal(b_shape, rng);
  Tensor c = Bmm(a, b, ta, tb);
  ASSERT_EQ(c.shape(), Shape({batch, m, n}));
  for (int64_t bi = 0; bi < batch; ++bi) {
    Tensor a2 = Slice(a, 0, bi, 1).Reshape(Shape{a_shape.dim(1), a_shape.dim(2)});
    Tensor b2 = Slice(b, 0, bi, 1).Reshape(Shape{b_shape.dim(1), b_shape.dim(2)});
    if (ta) a2 = Transpose(a2);
    if (tb) b2 = Transpose(b2);
    Tensor expected = NaiveMatmul(a2, b2);
    Tensor got = Slice(c, 0, bi, 1).Reshape(Shape{m, n});
    EXPECT_TRUE(AllClose(got, expected, 1e-3f, 1e-3f))
        << "batch " << bi << " ta=" << ta << " tb=" << tb << " k=" << k;
  }
}

// inner dims 1..8 cover the specialized fixed-size kernels; 11 covers the
// generic fallback.
INSTANTIATE_TEST_SUITE_P(
    AllTransposeCombosAndKernelSizes, BmmTransposeTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 2, 3, 4, 6, 8, 11)));

// -- Parallel-vs-sequential equivalence ------------------------------------
//
// The parallel kernels partition work over row blocks and batch entries
// only; each output element's arithmetic is identical whichever thread
// computes it, so parallel results must equal the sequential path bit for
// bit — checked with exact float equality, across odd/prime extents that
// stress tile and micro-kernel remainders on both sides of the tiled-path
// cutoff.

TEST(MatmulTest, ParallelMatchesSequentialExactlyOnOddShapes) {
  core::Rng rng(11);
  const std::vector<int64_t> ms = {1, 2, 3, 5, 7, 13, 31, 64, 65, 97, 131};
  const std::vector<int64_t> ks = {1, 2, 3, 7, 8, 17, 33, 64};
  const std::vector<int64_t> ns = {1, 3, 5, 8, 17, 31, 65};
  for (int64_t m : ms) {
    for (int64_t k : ks) {
      for (int64_t n : ns) {
        Tensor a = Tensor::RandomNormal(Shape{m, k}, rng);
        Tensor b = Tensor::RandomNormal(Shape{k, n}, rng);
        Tensor seq = WithParallelismCap(1, [&] { return Matmul(a, b); });
        Tensor par = WithParallelismCap(0, [&] { return Matmul(a, b); });
        ExpectIdentical(par, seq,
                        "matmul " + std::to_string(m) + "x" +
                            std::to_string(k) + "x" + std::to_string(n));
      }
    }
  }
}

TEST(MatmulTest, TiledPathMatchesNaiveOnLargeOddShapes) {
  core::Rng rng(12);
  for (auto [m, k, n] : std::vector<std::tuple<int, int, int>>{
           {67, 31, 29}, {131, 65, 19}, {257, 17, 67}, {73, 259, 33}}) {
    Tensor a = Tensor::RandomNormal(Shape{m, k}, rng);
    Tensor b = Tensor::RandomNormal(Shape{k, n}, rng);
    EXPECT_TRUE(AllClose(Matmul(a, b), NaiveMatmul(a, b), 1e-2f, 1e-3f))
        << m << "x" << k << "x" << n;
  }
}

class BmmEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(BmmEquivalenceTest, ParallelMatchesSequentialExactly) {
  auto [ta, tb] = GetParam();
  core::Rng rng(13 + 2 * ta + tb);
  const std::vector<int64_t> batches = {1, 3};
  const std::vector<int64_t> ms = {1, 3, 13, 64, 65};
  const std::vector<int64_t> ks = {1, 5, 8, 37};
  const std::vector<int64_t> ns = {1, 7, 31, 65};
  for (int64_t batch : batches) {
    for (int64_t m : ms) {
      for (int64_t k : ks) {
        for (int64_t n : ns) {
          Shape a_shape = ta ? Shape{batch, k, m} : Shape{batch, m, k};
          Shape b_shape = tb ? Shape{batch, n, k} : Shape{batch, k, n};
          Tensor a = Tensor::RandomNormal(a_shape, rng);
          Tensor b = Tensor::RandomNormal(b_shape, rng);
          Tensor seq = WithParallelismCap(1, [&] { return Bmm(a, b, ta, tb); });
          Tensor par = WithParallelismCap(0, [&] { return Bmm(a, b, ta, tb); });
          ExpectIdentical(par, seq,
                          "bmm b=" + std::to_string(batch) + " " +
                              std::to_string(m) + "x" + std::to_string(k) +
                              "x" + std::to_string(n) + " ta=" +
                              std::to_string(ta) + " tb=" + std::to_string(tb));
        }
      }
    }
  }
}

TEST_P(BmmEquivalenceTest, LargeShapesMatchNaivePerBatch) {
  auto [ta, tb] = GetParam();
  core::Rng rng(17 + 2 * ta + tb);
  const int64_t batch = 2, m = 97, k = 33, n = 41;
  Shape a_shape = ta ? Shape{batch, k, m} : Shape{batch, m, k};
  Shape b_shape = tb ? Shape{batch, n, k} : Shape{batch, k, n};
  Tensor a = Tensor::RandomNormal(a_shape, rng);
  Tensor b = Tensor::RandomNormal(b_shape, rng);
  Tensor c = Bmm(a, b, ta, tb);
  for (int64_t bi = 0; bi < batch; ++bi) {
    Tensor a2 = Slice(a, 0, bi, 1).Reshape(Shape{a_shape.dim(1), a_shape.dim(2)});
    Tensor b2 = Slice(b, 0, bi, 1).Reshape(Shape{b_shape.dim(1), b_shape.dim(2)});
    if (ta) a2 = Transpose(a2);
    if (tb) b2 = Transpose(b2);
    EXPECT_TRUE(AllClose(Slice(c, 0, bi, 1).Reshape(Shape{m, n}),
                         NaiveMatmul(a2, b2), 1e-2f, 1e-3f))
        << "batch " << bi << " ta=" << ta << " tb=" << tb;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposeCombos, BmmEquivalenceTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

// -- Edge shapes ------------------------------------------------------------

TEST(MatmulTest, EmptyAndDegenerateShapes) {
  core::Rng rng(19);
  // Zero rows / zero columns: a well-formed empty result.
  Tensor a0 = Tensor::Zeros(Shape{0, 5});
  Tensor b = Tensor::RandomNormal(Shape{5, 3}, rng);
  EXPECT_EQ(Matmul(a0, b).shape(), Shape({0, 3}));
  Tensor a = Tensor::RandomNormal(Shape{4, 5}, rng);
  Tensor bn0 = Tensor::Zeros(Shape{5, 0});
  EXPECT_EQ(Matmul(a, bn0).shape(), Shape({4, 0}));
  // Zero inner dimension: an all-zeros result (the empty sum).
  Tensor ak0 = Tensor::Zeros(Shape{4, 0});
  Tensor bk0 = Tensor::Zeros(Shape{0, 3});
  Tensor ck0 = Matmul(ak0, bk0);
  ASSERT_EQ(ck0.shape(), Shape({4, 3}));
  for (float v : ck0.ToVector()) EXPECT_EQ(v, 0.0f);
  // 1x1 everything.
  Tensor one = Matmul(Tensor::Full(Shape{1, 1}, 3.0f),
                      Tensor::Full(Shape{1, 1}, -2.0f));
  EXPECT_FLOAT_EQ(one.at({0, 0}), -6.0f);
}

TEST(BmmTest, EmptyAndDegenerateShapes) {
  // Zero batch.
  Tensor c0 = Bmm(Tensor::Zeros(Shape{0, 3, 4}), Tensor::Zeros(Shape{0, 4, 5}));
  EXPECT_EQ(c0.shape(), Shape({0, 3, 5}));
  // Zero inner dim with transpose flags.
  Tensor ck0 = Bmm(Tensor::Zeros(Shape{2, 0, 3}), Tensor::Zeros(Shape{2, 4, 0}),
                   /*transpose_a=*/true, /*transpose_b=*/true);
  ASSERT_EQ(ck0.shape(), Shape({2, 3, 4}));
  for (float v : ck0.ToVector()) EXPECT_EQ(v, 0.0f);
  // 1x1x1 batch entries.
  Tensor c1 = Bmm(Tensor::Full(Shape{3, 1, 1}, 2.0f),
                  Tensor::Full(Shape{3, 1, 1}, 5.0f));
  ASSERT_EQ(c1.shape(), Shape({3, 1, 1}));
  for (float v : c1.ToVector()) EXPECT_FLOAT_EQ(v, 10.0f);
}

// -- Threaded callers -------------------------------------------------------

// Kernels are invoked from inside pool tasks throughout the codebase (the
// serving batcher's forward pass, nested autograd ops). A kernel that fans
// out to the pool from within a pool task must help drain the queue rather
// than deadlock waiting on itself.
TEST(MatmulTest, KernelsInvokedFromInsidePoolTasksDoNotDeadlock) {
  core::Rng rng(23);
  Tensor a = Tensor::RandomNormal(Shape{131, 65}, rng);
  Tensor b = Tensor::RandomNormal(Shape{65, 67}, rng);
  Tensor expected = Matmul(a, b);
  constexpr int64_t kCallers = 8;
  std::vector<Tensor> results(kCallers);
  // Outer ParallelFor occupies pool threads; each body runs a full parallel
  // matmul (which fans out again) from inside a pool task.
  core::ParallelFor(0, kCallers, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) results[i] = Matmul(a, b);
  }, /*min_chunk=*/1);
  for (int64_t i = 0; i < kCallers; ++i) {
    ExpectIdentical(results[i], expected,
                    "threaded caller " + std::to_string(i));
  }
}

TEST(BmmTest, BatchesAreIndependent) {
  core::Rng rng(9);
  Tensor a = Tensor::RandomNormal(Shape{2, 3, 4}, rng);
  Tensor b = Tensor::RandomNormal(Shape{2, 4, 5}, rng);
  Tensor c = Bmm(a, b);
  // Zeroing batch 1 of the inputs must not change batch 0 of the output.
  Tensor a0 = a.Clone();
  for (int64_t i = 0; i < 12; ++i) a0.data()[12 + i] = 0.0f;
  Tensor c0 = Bmm(a0, b);
  EXPECT_TRUE(AllClose(Slice(c, 0, 0, 1), Slice(c0, 0, 0, 1), 1e-6f, 1e-6f));
}

}  // namespace
}  // namespace sstban::tensor

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sstban::tensor {
namespace {

// Reference O(n^3) implementation for validation.
Tensor NaiveMatmul(const Tensor& a, const Tensor& b) {
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::Zeros(Shape{m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t p = 0; p < k; ++p) acc += a.at({i, p}) * b.at({p, j});
      c.at({i, j}) = static_cast<float>(acc);
    }
  return c;
}

TEST(MatmulTest, SmallKnownResult) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = Matmul(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(MatmulTest, IdentityIsNoop) {
  core::Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{5, 5}, rng);
  Tensor eye = Tensor::Zeros(Shape{5, 5});
  for (int64_t i = 0; i < 5; ++i) eye.at({i, i}) = 1.0f;
  EXPECT_TRUE(AllClose(Matmul(a, eye), a, 1e-5f, 1e-5f));
}

TEST(MatmulTest, MatchesNaiveOnRandom) {
  core::Rng rng(2);
  for (auto [m, k, n] : std::vector<std::tuple<int, int, int>>{
           {1, 1, 1}, {3, 7, 5}, {17, 9, 13}, {70, 20, 30}}) {
    Tensor a = Tensor::RandomNormal(Shape{m, k}, rng);
    Tensor b = Tensor::RandomNormal(Shape{k, n}, rng);
    EXPECT_TRUE(AllClose(Matmul(a, b), NaiveMatmul(a, b), 1e-3f, 1e-3f))
        << m << "x" << k << "x" << n;
  }
}

class BmmTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

TEST_P(BmmTransposeTest, MatchesNaivePerBatch) {
  auto [ta, tb, inner] = GetParam();
  core::Rng rng(3 + inner);
  const int64_t batch = 3, m = 5, n = 4;
  int64_t k = inner;
  Shape a_shape = ta ? Shape{batch, k, m} : Shape{batch, m, k};
  Shape b_shape = tb ? Shape{batch, n, k} : Shape{batch, k, n};
  Tensor a = Tensor::RandomNormal(a_shape, rng);
  Tensor b = Tensor::RandomNormal(b_shape, rng);
  Tensor c = Bmm(a, b, ta, tb);
  ASSERT_EQ(c.shape(), Shape({batch, m, n}));
  for (int64_t bi = 0; bi < batch; ++bi) {
    Tensor a2 = Slice(a, 0, bi, 1).Reshape(Shape{a_shape.dim(1), a_shape.dim(2)});
    Tensor b2 = Slice(b, 0, bi, 1).Reshape(Shape{b_shape.dim(1), b_shape.dim(2)});
    if (ta) a2 = Transpose(a2);
    if (tb) b2 = Transpose(b2);
    Tensor expected = NaiveMatmul(a2, b2);
    Tensor got = Slice(c, 0, bi, 1).Reshape(Shape{m, n});
    EXPECT_TRUE(AllClose(got, expected, 1e-3f, 1e-3f))
        << "batch " << bi << " ta=" << ta << " tb=" << tb << " k=" << k;
  }
}

// inner dims 1..8 cover the specialized fixed-size kernels; 11 covers the
// generic fallback.
INSTANTIATE_TEST_SUITE_P(
    AllTransposeCombosAndKernelSizes, BmmTransposeTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 2, 3, 4, 6, 8, 11)));

TEST(BmmTest, BatchesAreIndependent) {
  core::Rng rng(9);
  Tensor a = Tensor::RandomNormal(Shape{2, 3, 4}, rng);
  Tensor b = Tensor::RandomNormal(Shape{2, 4, 5}, rng);
  Tensor c = Bmm(a, b);
  // Zeroing batch 1 of the inputs must not change batch 0 of the output.
  Tensor a0 = a.Clone();
  for (int64_t i = 0; i < 12; ++i) a0.data()[12 + i] = 0.0f;
  Tensor c0 = Bmm(a0, b);
  EXPECT_TRUE(AllClose(Slice(c, 0, 0, 1), Slice(c0, 0, 0, 1), 1e-6f, 1e-6f));
}

}  // namespace
}  // namespace sstban::tensor

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/linalg.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace sstban::tensor {
namespace {

// Random SPD matrix A = M M^T + n*I.
Tensor RandomSpd(int64_t n, core::Rng& rng) {
  Tensor m = Tensor::RandomNormal(Shape{n, n}, rng);
  Tensor a = Matmul(m, Transpose(m));
  for (int64_t i = 0; i < n; ++i) a.at({i, i}) += static_cast<float>(n);
  return a;
}

TEST(CholeskyTest, FactorReconstructs) {
  core::Rng rng(1);
  Tensor a = RandomSpd(6, rng);
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Tensor reconstructed = Matmul(l.value(), Transpose(l.value()));
  EXPECT_TRUE(AllClose(reconstructed, a, 1e-2f, 1e-3f));
}

TEST(CholeskyTest, FactorIsLowerTriangular) {
  core::Rng rng(2);
  auto l = CholeskyFactor(RandomSpd(5, rng));
  ASSERT_TRUE(l.ok());
  for (int64_t i = 0; i < 5; ++i)
    for (int64_t j = i + 1; j < 5; ++j)
      EXPECT_EQ(l.value().at({i, j}), 0.0f);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Tensor::Zeros(Shape{2, 3})).ok());
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Tensor a = Tensor::Zeros(Shape{2, 2});
  a.at({0, 0}) = 1.0f;
  a.at({1, 1}) = -1.0f;
  auto result = CholeskyFactor(a);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(CholeskySolveTest, SolvesLinearSystem) {
  core::Rng rng(3);
  Tensor a = RandomSpd(8, rng);
  Tensor x_true = Tensor::RandomNormal(Shape{8, 3}, rng);
  Tensor b = Matmul(a, x_true);
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AllClose(x.value(), x_true, 5e-3f, 5e-3f));
}

TEST(CholeskySolveTest, IdentitySolveReturnsRhs) {
  Tensor eye = Tensor::Zeros(Shape{4, 4});
  for (int64_t i = 0; i < 4; ++i) eye.at({i, i}) = 1.0f;
  core::Rng rng(4);
  Tensor b = Tensor::RandomNormal(Shape{4, 2}, rng);
  auto x = CholeskySolve(eye, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AllClose(x.value(), b, 1e-5f, 1e-5f));
}

TEST(CholeskySolveTest, RejectsMismatchedRhs) {
  core::Rng rng(5);
  Tensor a = RandomSpd(4, rng);
  EXPECT_FALSE(CholeskySolve(a, Tensor::Zeros(Shape{5, 2})).ok());
}

}  // namespace
}  // namespace sstban::tensor

// Invariant-based fault-injection tests. The CI fault matrix runs this
// binary under several SSTBAN_FAILPOINTS schedules (error / delay / none);
// every assertion here is an invariant that must hold regardless of which
// I/O operations fail or stall. Do not assert "this save succeeds" —
// assert "no schedule can leave corrupt state behind".

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/failpoint.h"
#include "core/file_io.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "nn/mlp.h"
#include "nn/serialization.h"
#include "serving/model_registry.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/checkpoint.h"
#include "training/trainer.h"

namespace sstban {
namespace {

namespace fs = std::filesystem;
namespace model_ns = ::sstban::sstban;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

model_ns::SstbanConfig TinyConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 24;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  return config;
}

std::shared_ptr<data::TrafficDataset> TinyWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = 4;
  config.num_corridors = 2;
  config.steps_per_day = 24;
  config.num_days = 5;
  config.seed = 33;
  return std::make_shared<data::TrafficDataset>(GenerateSyntheticWorld(config));
}

// INVARIANT: an injected checkpoint-write failure is a warning, never a
// training failure — and whatever files survive in the directory either
// load cleanly or are skipped by the newest-valid scan.
TEST(FaultInjectionTest, TrainingCompletesDespiteCheckpointWriteFaults) {
  std::string dir = FreshDir("fi_train");
  auto dataset = TinyWorld();
  data::WindowDataset windows(dataset, 6, 6);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanModel model(TinyConfig());

  training::TrainerConfig config;
  config.max_epochs = 3;
  config.batch_size = 8;
  config.checkpoint_dir = dir;
  training::TrainStats stats =
      training::Trainer(config).Train(&model, windows, split, normalizer);
  EXPECT_EQ(stats.epochs_run, 3);

  // Every surviving checkpoint file parses or is skipped; the scan itself
  // must never crash or hand back a torn record.
  training::TrainCheckpoint state;
  std::string from;
  core::Status newest =
      training::LoadNewestValidTrainCheckpoint(dir, &state, &from);
  if (newest.ok()) {
    EXPECT_FALSE(state.params.empty());
    EXPECT_EQ(state.adam_m.size(), state.params.size());
    EXPECT_EQ(state.adam_v.size(), state.params.size());
    EXPECT_GE(state.next_epoch, 1);
    EXPECT_LE(state.next_epoch, 3);
  } else {
    EXPECT_EQ(newest.code(), core::StatusCode::kNotFound);
  }
  // No schedule may strand temp files at final-looking paths.
  for (const std::string& path : training::ListTrainCheckpoints(dir)) {
    EXPECT_EQ(path.find(".tmp."), std::string::npos) << path;
  }
}

// INVARIANT: if the weights file exists, it loads. A failed save leaves
// either the previous valid bytes or nothing — never a torn file.
TEST(FaultInjectionTest, WeightsPathIsNeverTorn) {
  std::string dir = FreshDir("fi_weights");
  std::string path = dir + "/weights.bin";
  core::Rng rng(11);
  nn::Mlp model({4, 6, 2}, rng);
  // Alternate clean attempts with locally injected mid-write failures; the
  // environment schedule may add its own faults on top of these.
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (attempt % 2 == 1) {
      ASSERT_TRUE(
          core::FailPoint::Set("ckpt_write_mid", "error(kIoError)@1").ok());
    }
    (void)nn::SaveParameters(model, path);  // may fail: that is the point
    core::FailPoint::Clear("ckpt_write_mid");
    if (fs::exists(path)) {
      core::Rng rng2(12);
      nn::Mlp reload({4, 6, 2}, rng2);
      core::Status loaded = nn::LoadParameters(&reload, path);
      // The environment schedule may fail the *read* itself; that says
      // nothing about the bytes on disk, so retry past the injected fault.
      for (int retry = 0; !loaded.ok() && retry < 4 &&
                          loaded.message().find("injected by failpoint") !=
                              std::string::npos;
           ++retry) {
        loaded = nn::LoadParameters(&reload, path);
      }
      EXPECT_TRUE(loaded.ok())
          << "torn file at final path after attempt " << attempt << ": "
          << loaded.ToString();
    }
  }
}

// Satellite (b): a checkpoint that goes corrupt between validation passes
// mid-swap is rejected with kFailedPrecondition and the registry keeps
// serving the old version untouched.
TEST(FaultInjectionTest, HotSwapFaultKeepsOldModelServing) {
  model_ns::SstbanConfig config = TinyConfig();
  serving::ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      data::Normalizer());
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  auto before = registry.current();
  ASSERT_NE(before, nullptr);

  std::string dir = FreshDir("fi_swap");
  std::string ckpt = dir + "/v2.bin";
  model_ns::SstbanModel next(config);
  core::Status saved = nn::SaveParameters(next, ckpt);

  ASSERT_TRUE(
      core::FailPoint::Set("registry_swap_load", "error(kIoError)@1").ok());
  core::Status swap = registry.LoadVersion(ckpt);
  core::FailPoint::Clear("registry_swap_load");
  ASSERT_FALSE(swap.ok());
  EXPECT_EQ(swap.code(), core::StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.current().get(), before.get());
  EXPECT_EQ(registry.current_version(), before->version);

  // With the injected fault consumed, the same checkpoint swaps in fine
  // (when the save itself survived the environment's schedule).
  if (saved.ok()) {
    core::Status retry = registry.LoadVersion(ckpt);
    if (retry.ok()) {
      EXPECT_EQ(registry.current_version(), before->version + 1);
    } else {
      // The environment schedule can still fail the re-read; the rollback
      // contract must hold regardless.
      EXPECT_EQ(retry.code(), core::StatusCode::kFailedPrecondition);
      EXPECT_EQ(registry.current_version(), before->version);
    }
  }
}

// INVARIANT: resume never loads a torn checkpoint — after training with
// faults, a second run either resumes from a valid file or starts fresh,
// but always finishes.
TEST(FaultInjectionTest, ResumeAfterFaultyRunAlwaysCompletes) {
  std::string dir = FreshDir("fi_resume");
  auto dataset = TinyWorld();
  data::WindowDataset windows(dataset, 6, 6);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);

  {
    model_ns::SstbanModel model(TinyConfig());
    training::TrainerConfig config;
    config.max_epochs = 2;
    config.batch_size = 8;
    config.checkpoint_dir = dir;
    training::Trainer(config).Train(&model, windows, split, normalizer);
  }
  model_ns::SstbanModel model(TinyConfig());
  training::TrainerConfig config;
  config.max_epochs = 3;
  config.batch_size = 8;
  config.checkpoint_dir = dir;
  training::TrainStats stats =
      training::Trainer(config).Train(&model, windows, split, normalizer);
  EXPECT_GE(stats.start_epoch, 0);
  EXPECT_LE(stats.start_epoch, 2);
  EXPECT_EQ(stats.epochs_run, 3);
}

}  // namespace
}  // namespace sstban

// Differential tests for the fused attention kernel (tensor/fused_attention.h)
// and its integrations: the raw kernel vs the unfused
// Bmm -> MulScalar -> (+mask) -> Softmax -> Bmm chain, the autograd op's
// recompute backward vs the unfused tape gradients, and the static executor's
// kFusedAttention peephole vs an unfused compile of the same model.
//
// Tolerance policy (DESIGN.md §14): with lk <= kFusedAttentionExactMaxKeys
// the fused kernel runs the exact two-pass mode and must match the unfused
// chain BIT FOR BIT; above that it switches to the flash-style online softmax,
// which reorders the denominator sum and is held to a relative tolerance
// instead — but each mode is bitwise deterministic across thread counts.
// Registered under the `exec_diff` ctest label alongside executor_diff_test.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/dataset.h"
#include "exec/engine.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/fused_attention.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/tensor.h"
#include "training/forecast_service.h"

namespace sstban {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

// The additive mask the tape path builds: [batch, lq, lk] rows of
// keep ? 0 : -1e9, expanded from [batch / mask_heads, lk] keep rows.
t::Tensor AdditiveMask(const t::Tensor& keep, int64_t batch, int64_t heads,
                       int64_t lq, int64_t lk) {
  t::Tensor additive = t::Tensor::Empty(t::Shape{batch, lq, lk});
  float* pa = additive.data();
  const float* pm = keep.data();
  for (int64_t r = 0; r < batch * lq; ++r) {
    const float* mrow = pm + (r / (heads * lq)) * lk;
    for (int64_t j = 0; j < lk; ++j) {
      pa[r * lk + j] = mrow[j] > 0.5f ? 0.0f : -1e9f;
    }
  }
  return additive;
}

// The unfused reference chain, on the very kernels the tape uses.
t::Tensor UnfusedAttention(const t::Tensor& q, const t::Tensor& k,
                           const t::Tensor& v, const t::Tensor* keep,
                           int64_t mask_heads, float scale) {
  t::Tensor scores = t::MulScalar(t::Bmm(q, k, false, true), scale);
  if (keep != nullptr) {
    scores = t::Add(scores, AdditiveMask(*keep, q.dim(0), mask_heads,
                                         q.dim(1), k.dim(1)));
  }
  return t::Bmm(t::Softmax(scores), v, false, false);
}

t::Tensor MakeKeep(int64_t rows, int64_t lk, uint64_t seed) {
  core::Rng rng(seed);
  t::Tensor keep = t::Tensor::Ones(t::Shape{rows, lk});
  for (int64_t i = 0; i < keep.size(); ++i) {
    if (rng.NextDouble() < 0.3) keep.data()[i] = 0.0f;
  }
  keep.data()[0] = 1.0f;  // never a fully-masked first row
  return keep;
}

void ExpectBitwise(const t::Tensor& a, const t::Tensor& b,
                   const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0)
      << what;
}

// -- Exact mode: bitwise vs the unfused chain --------------------------------

TEST(FusedAttentionTest, ExactModeMatchesUnfusedChainBitwise) {
  struct Case { int64_t batch, lq, lk, dk, heads; bool masked; };
  const std::vector<Case> cases = {
      {1, 1, 1, 1, 1, false},   {2, 5, 7, 3, 1, false},
      {4, 16, 16, 8, 2, true},  {6, 64, 33, 4, 3, true},
      {2, 130, 65, 8, 2, true}, {1, 48, 512, 8, 1, false},
      {2, 3, 512, 4, 2, true},
  };
  core::Rng rng(3);
  for (const Case& c : cases) {
    SCOPED_TRACE("b=" + std::to_string(c.batch) + " lq=" +
                 std::to_string(c.lq) + " lk=" + std::to_string(c.lk) +
                 " dk=" + std::to_string(c.dk) +
                 (c.masked ? " masked" : ""));
    ASSERT_LE(c.lk, t::kFusedAttentionExactMaxKeys);
    t::Tensor q = t::Tensor::RandomNormal(t::Shape{c.batch, c.lq, c.dk}, rng);
    t::Tensor k = t::Tensor::RandomNormal(t::Shape{c.batch, c.lk, c.dk}, rng);
    t::Tensor v = t::Tensor::RandomNormal(t::Shape{c.batch, c.lk, c.dk}, rng);
    t::Tensor keep;
    if (c.masked) keep = MakeKeep(c.batch / c.heads, c.lk, 7 + c.batch);
    const t::Tensor* keep_ptr = c.masked ? &keep : nullptr;
    float scale = 1.0f / std::sqrt(static_cast<float>(c.dk));
    t::Tensor fused = t::FusedAttention(q, k, v, keep_ptr, c.heads, scale);
    t::Tensor unfused = UnfusedAttention(q, k, v, keep_ptr, c.heads, scale);
    ExpectBitwise(fused, unfused, "fused vs unfused");
  }
}

// -- Online-softmax mode: documented tolerance, never bitwise drift ----------

TEST(FusedAttentionTest, OnlineModeMatchesUnfusedWithinTolerance) {
  core::Rng rng(9);
  const int64_t batch = 2, lq = 8, lk = 700, dk = 8;  // lk > exact cutoff
  ASSERT_GT(lk, t::kFusedAttentionExactMaxKeys);
  t::Tensor q = t::Tensor::RandomNormal(t::Shape{batch, lq, dk}, rng);
  t::Tensor k = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
  t::Tensor v = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
  t::Tensor keep = MakeKeep(batch, lk, 31);
  float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  for (const t::Tensor* keep_ptr :
       std::vector<const t::Tensor*>{nullptr, &keep}) {
    SCOPED_TRACE(keep_ptr ? "masked" : "unmasked");
    t::Tensor fused = t::FusedAttention(q, k, v, keep_ptr, 1, scale);
    t::Tensor unfused = UnfusedAttention(q, k, v, keep_ptr, 1, scale);
    // Online softmax reorders the denominator accumulation (double-precision
    // running sum over key blocks); outputs are convex combinations of V, so
    // absolute error is what matters. 1e-5 is ~100x the observed drift.
    EXPECT_TRUE(t::AllClose(fused, unfused, /*atol=*/1e-5f, /*rtol=*/1e-4f));
    // ...but never bitwise-random: the same call twice is identical.
    ExpectBitwise(fused, t::FusedAttention(q, k, v, keep_ptr, 1, scale),
                  "run-to-run");
  }
}

TEST(FusedAttentionTest, BothModesAreBitwiseDeterministicOneVsEightThreads) {
  core::Rng rng(21);
  for (int64_t lk : {48, 512, 700}) {
    SCOPED_TRACE("lk=" + std::to_string(lk));
    const int64_t batch = 4, lq = 70, dk = 8;
    t::Tensor q = t::Tensor::RandomNormal(t::Shape{batch, lq, dk}, rng);
    t::Tensor k = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
    t::Tensor v = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
    t::Tensor keep = MakeKeep(batch / 2, lk, 5);
    core::SetParallelismCapForTesting(1);
    t::Tensor seq = t::FusedAttention(q, k, v, &keep, 2, 0.25f);
    core::SetParallelismCapForTesting(8);
    t::Tensor par = t::FusedAttention(q, k, v, &keep, 2, 0.25f);
    core::SetParallelismCapForTesting(0);
    ExpectBitwise(seq, par, "1 vs 8 threads");
  }
}

// -- Autograd: the recompute backward vs the unfused tape gradients ----------

TEST(FusedAttentionTest, BackwardMatchesUnfusedChainGradients) {
  core::Rng rng(33);
  const int64_t batch = 2, lq = 6, lk = 9, dk = 4, heads = 1;
  t::Tensor qv = t::Tensor::RandomNormal(t::Shape{batch, lq, dk}, rng);
  t::Tensor kv = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
  t::Tensor vv = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
  t::Tensor keep = MakeKeep(batch, lk, 13);
  float scale = 0.5f;

  for (const t::Tensor* keep_ptr :
       std::vector<const t::Tensor*>{nullptr, &keep}) {
    SCOPED_TRACE(keep_ptr ? "masked" : "unmasked");
    // Fused op.
    ag::Variable q1(qv.Clone(), /*requires_grad=*/true);
    ag::Variable k1(kv.Clone(), /*requires_grad=*/true);
    ag::Variable v1(vv.Clone(), /*requires_grad=*/true);
    ag::Variable out1 = ag::FusedAttention(q1, k1, v1, keep_ptr, heads, scale);
    ag::MeanAll(ag::Square(out1)).Backward();

    // Unfused chain.
    ag::Variable q2(qv.Clone(), /*requires_grad=*/true);
    ag::Variable k2(kv.Clone(), /*requires_grad=*/true);
    ag::Variable v2(vv.Clone(), /*requires_grad=*/true);
    ag::Variable scores = ag::MulScalar(ag::Bmm(q2, k2, false, true), scale);
    ag::Variable probs =
        keep_ptr ? ag::SoftmaxWithMask(
                       scores, AdditiveMask(*keep_ptr, batch, heads, lq, lk))
                 : ag::Softmax(scores);
    ag::Variable out2 = ag::Bmm(probs, v2);
    ag::MeanAll(ag::Square(out2)).Backward();

    // Forward agrees bitwise (exact mode), gradients to rounding: the
    // recompute backward contracts the same sums in a different order.
    ExpectBitwise(out1.value(), out2.value(), "forward");
    EXPECT_TRUE(t::AllClose(q1.grad(), q2.grad(), 1e-5f, 1e-4f));
    EXPECT_TRUE(t::AllClose(k1.grad(), k2.grad(), 1e-5f, 1e-4f));
    EXPECT_TRUE(t::AllClose(v1.grad(), v2.grad(), 1e-5f, 1e-4f));
  }
}

TEST(FusedAttentionTest, BackwardIsBitwiseDeterministicOneVsEightThreads) {
  core::Rng rng(41);
  const int64_t batch = 4, lq = 70, lk = 65, dk = 4;
  t::Tensor q = t::Tensor::RandomNormal(t::Shape{batch, lq, dk}, rng);
  t::Tensor k = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
  t::Tensor v = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
  t::Tensor dout = t::Tensor::RandomNormal(t::Shape{batch, lq, dk}, rng);
  auto run = [&](int cap) {
    core::SetParallelismCapForTesting(cap);
    t::Tensor dq = t::Tensor::Empty(t::Shape{batch, lq, dk});
    t::Tensor dk_ = t::Tensor::Empty(t::Shape{batch, lk, dk});
    t::Tensor dv = t::Tensor::Empty(t::Shape{batch, lk, dk});
    t::FusedAttentionBackward(q.data(), k.data(), v.data(), nullptr, 1,
                              dout.data(), dq.data(), dk_.data(), dv.data(),
                              batch, lq, lk, dk, 0.5f);
    core::SetParallelismCapForTesting(0);
    return std::vector<t::Tensor>{dq, dk_, dv};
  };
  std::vector<t::Tensor> seq = run(1);
  std::vector<t::Tensor> par = run(8);
  for (size_t i = 0; i < seq.size(); ++i) {
    ExpectBitwise(seq[i], par[i], "grad " + std::to_string(i));
  }
}

// -- Executor peephole: fused OpKind vs an unfused compile -------------------

model_ns::SstbanConfig PeepholeConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 4;
  config.output_len = 4;
  config.num_features = 1;
  config.steps_per_day = 8;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.temporal_refs = 2;
  config.spatial_refs = 2;
  config.patch_len = 2;
  config.self_supervised = false;
  config.seed = 19;
  return config;
}

data::Batch PeepholeBatch(int64_t b, const model_ns::SstbanConfig& c,
                          uint64_t seed) {
  core::Rng rng(seed);
  data::Batch batch;
  batch.x = t::Tensor::RandomUniform(
      t::Shape{b, c.input_len, c.num_nodes, c.num_features}, rng, -1.f, 1.f);
  batch.y = t::Tensor::Zeros(t::Shape{b, c.output_len, c.num_nodes, 1});
  for (int64_t i = 0; i < b; ++i) {
    training::AppendCalendarFeatures(/*first_step=*/2 + 3 * i, c.input_len,
                                     c.output_len, c.steps_per_day, &batch);
  }
  return batch;
}

// The fused-attention grid row: two identically-seeded models, one compiled
// with the peephole live and one with fused attention disabled (unfused
// Bmm/MulScalar/Softmax/Bmm instruction chain). At serving shapes the fused
// instruction runs the exact two-pass mode, so BOTH programs must agree with
// each other and with their tapes bit for bit — masked and unmasked, 1 and 8
// threads.
TEST(FusedAttentionExecDiffTest, FusedOpKindMatchesUnfusedProgramBitwise) {
  model_ns::SstbanConfig config = PeepholeConfig();
  for (int cap : {1, 8}) {
    core::SetParallelismCapForTesting(cap);
    for (bool masked : {false, true}) {
      SCOPED_TRACE(std::string(masked ? "masked" : "clean") + " cap=" +
                   std::to_string(cap));
      data::Batch batch = PeepholeBatch(2, config, /*seed=*/77);
      t::Tensor keep = t::Tensor::Ones(t::Shape{2, 4, 4});
      for (int64_t i = 0; i < keep.size(); i += 3) keep.data()[i] = 0.0f;
      keep.data()[0] = 1.0f;

      auto run_one = [&](int fused_enabled) {
        t::SetFusedAttentionEnabledForTesting(fused_enabled);
        model_ns::SstbanModel model(config);
        model.SetTraining(false);
        exec::InferenceEngine* engine = model.inference_engine();
        EXPECT_NE(engine, nullptr);
        t::Tensor out;
        core::Status status =
            masked ? engine->RunMasked(batch.x, keep, batch, &out)
                   : engine->Run(batch.x, batch, &out);
        EXPECT_TRUE(status.ok()) << status.ToString();
        // Compile-time self-check already enforced program == tape bitwise.
        exec::InferenceEngine::Stats stats = engine->stats();
        EXPECT_EQ(stats.poisoned, 0);
        EXPECT_EQ(stats.compiles, 1);
        return out;
      };
      t::Tensor fused_out = run_one(1);
      t::Tensor unfused_out = run_one(0);
      t::SetFusedAttentionEnabledForTesting(-1);
      ExpectBitwise(fused_out, unfused_out, "fused vs unfused program");
    }
  }
  core::SetParallelismCapForTesting(0);
}

}  // namespace
}  // namespace sstban

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "baselines/agcrn.h"
#include "baselines/astgnn.h"
#include "baselines/common.h"
#include "baselines/dcrnn.h"
#include "baselines/dmstgcn.h"
#include "baselines/gman.h"
#include "baselines/gwnet.h"
#include "baselines/historical_average.h"
#include "baselines/var_model.h"
#include "core/rng.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "graph/traffic_graph.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace sstban::baselines {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

constexpr int64_t kNodes = 6;
constexpr int64_t kP = 8;
constexpr int64_t kQ = 8;
constexpr int64_t kStepsPerDay = 12;

data::Batch MakeBatch(int64_t batch_size, int64_t feats = 1) {
  data::Batch batch;
  core::Rng rng(77);
  batch.x = t::Tensor::RandomNormal(t::Shape{batch_size, kP, kNodes, feats}, rng);
  batch.y = t::Tensor::RandomNormal(t::Shape{batch_size, kQ, kNodes, feats}, rng);
  for (int64_t i = 0; i < batch_size * kP; ++i) {
    batch.tod_in.push_back(i % kStepsPerDay);
    batch.dow_in.push_back(0);
  }
  for (int64_t i = 0; i < batch_size * kQ; ++i) {
    batch.tod_out.push_back(i % kStepsPerDay);
    batch.dow_out.push_back(0);
  }
  return batch;
}

graph::TrafficGraph TestGraph() {
  core::Rng rng(5);
  return graph::TrafficGraph::RandomCorridor(kNodes, 2, rng);
}

TEST(CommonTest, SupportMatmulMatchesPerBatchMatmul) {
  core::Rng rng(1);
  t::Tensor support = t::Tensor::RandomNormal(t::Shape{4, 4}, rng);
  t::Tensor x = t::Tensor::RandomNormal(t::Shape{3, 4, 5}, rng);
  ag::Variable result = SupportMatmul(ag::Variable(support), ag::Variable(x));
  for (int64_t b = 0; b < 3; ++b) {
    t::Tensor xb = t::Slice(x, 0, b, 1).Reshape(t::Shape{4, 5});
    t::Tensor expected = t::Matmul(support, xb);
    t::Tensor got = t::Slice(result.value(), 0, b, 1).Reshape(t::Shape{4, 5});
    EXPECT_TRUE(t::AllClose(got, expected, 1e-4f, 1e-4f)) << "batch " << b;
  }
}

TEST(CommonTest, SupportMatmulGradientsFlowBothWays) {
  core::Rng rng(2);
  ag::Variable support(t::Tensor::RandomNormal(t::Shape{3, 3}, rng), true);
  ag::Variable x(t::Tensor::RandomNormal(t::Shape{2, 3, 4}, rng), true);
  ag::SumAll(ag::Square(SupportMatmul(support, x))).Backward();
  EXPECT_TRUE(support.has_grad());
  EXPECT_TRUE(x.has_grad());
}

TEST(CommonTest, AdaptiveAdjacencyRowsSumToOne) {
  core::Rng rng(3);
  ag::Variable e1(t::Tensor::RandomNormal(t::Shape{5, 3}, rng));
  ag::Variable e2(t::Tensor::RandomNormal(t::Shape{5, 3}, rng));
  ag::Variable adj = AdaptiveAdjacency(e1, e2);
  EXPECT_EQ(adj.shape(), t::Shape({5, 5}));
  for (int64_t i = 0; i < 5; ++i) {
    double row = 0;
    for (int64_t j = 0; j < 5; ++j) row += adj.value().at({i, j});
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(HistoricalAverageTest, PredictsInputMeanExactly) {
  HistoricalAverage ha;
  data::Batch batch = MakeBatch(2);
  ag::Variable pred = ha.Predict(batch.x, batch);
  ASSERT_EQ(pred.shape(), t::Shape({2, kQ, kNodes, 1}));
  t::Tensor mean = t::Mean(batch.x, 1, true);
  for (int64_t q = 0; q < kQ; ++q) {
    EXPECT_TRUE(t::AllClose(t::Slice(pred.value(), 1, q, 1), mean, 1e-5f, 1e-5f));
  }
  EXPECT_FALSE(ha.IsTrainable());
}

TEST(VarModelTest, RecoversLinearAutoregressiveProcess) {
  // Build a dataset following y_t = 0.8 y_{t-1} + noise per node; a lag-1
  // VAR must forecast it much better than chance.
  const int64_t steps = 400, nodes = 3;
  auto ds = std::make_shared<data::TrafficDataset>();
  ds->name = "ar1";
  ds->signals = t::Tensor(t::Shape{steps, nodes, 1});
  ds->steps_per_day = 24;
  core::Rng rng(9);
  std::vector<float> state(nodes, 0.0f);
  for (int64_t ti = 0; ti < steps; ++ti) {
    ds->time_of_day.push_back(ti % 24);
    ds->day_of_week.push_back((ti / 24) % 7);
    for (int64_t v = 0; v < nodes; ++v) {
      state[v] = 0.8f * state[v] + 0.05f * rng.NextGaussian();
      ds->signals.at({ti, v, 0}) = state[v] + 1.0f;  // positive offset
    }
  }
  data::WindowDataset windows(ds, 8, 4);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  VarModel var(/*lag=*/2, /*ridge=*/1e-3f);
  var.Fit(windows, split.train, norm);
  ASSERT_TRUE(var.fitted());

  data::Batch batch = windows.MakeBatch({split.test[0], split.test[5]});
  t::Tensor x_norm = norm.Transform(batch.x);
  ag::Variable pred = var.Predict(x_norm, batch);
  t::Tensor denorm = norm.InverseTransform(pred.value());
  // One-step-ahead error must be small relative to signal scale.
  t::Tensor err1 = t::Abs(t::Sub(t::Slice(denorm, 1, 0, 1),
                                 t::Slice(batch.y, 1, 0, 1)));
  EXPECT_LT(t::MeanAll(err1).item(), 0.08f);
}

TEST(VarModelTest, NotTrainableAndRequiresFit) {
  VarModel var;
  EXPECT_FALSE(var.IsTrainable());
  EXPECT_FALSE(var.fitted());
}

// Shape + gradient-flow smoke tests shared across the neural baselines.
void ExpectModelWellFormed(training::TrafficModel* model, int64_t feats = 1) {
  data::Batch batch = MakeBatch(2, feats);
  core::Rng rng(31);
  t::Tensor x_norm = batch.x;
  ag::Variable pred = model->Predict(x_norm, batch);
  ASSERT_EQ(pred.shape(), t::Shape({2, kQ, kNodes, feats})) << model->name();
  EXPECT_FALSE(t::HasNonFinite(pred.value())) << model->name();
  t::Tensor y_norm = batch.y;
  ag::Variable loss = model->TrainingLoss(x_norm, y_norm, batch);
  model->ZeroGrad();
  loss.Backward();
  int64_t with_grad = 0, total = 0;
  for (auto& [name, p] : model->NamedParameters()) {
    ++total;
    if (p.has_grad()) ++with_grad;
  }
  EXPECT_EQ(with_grad, total) << model->name() << ": some params got no grad";
  EXPECT_GT(total, 0) << model->name();
}

TEST(DcrnnTest, WellFormed) {
  graph::TrafficGraph g = TestGraph();
  DcrnnLite model(g, 1, 8);
  ExpectModelWellFormed(&model);
  EXPECT_EQ(model.name(), "DCRNN");
}

TEST(GwnetTest, WellFormed) {
  graph::TrafficGraph g = TestGraph();
  GwnetLite model(g, 1, kQ, 8, 2);
  ExpectModelWellFormed(&model);
  EXPECT_EQ(model.name(), "GWNet");
}

TEST(AgcrnTest, WellFormed) {
  AgcrnLite model(kNodes, 1, kQ, 8, 4);
  ExpectModelWellFormed(&model);
  EXPECT_EQ(model.name(), "AGCRN");
}

TEST(DmstgcnTest, WellFormed) {
  DmstgcnLite model(kNodes, 1, kQ, kStepsPerDay, 8, 2);
  ExpectModelWellFormed(&model);
  EXPECT_EQ(model.name(), "DMSTGCN");
}

TEST(AstgnnTest, WellFormed) {
  graph::TrafficGraph g = TestGraph();
  AstgnnLite model(g, 1, kP, kQ, 8, 1, 2);
  ExpectModelWellFormed(&model);
  EXPECT_EQ(model.name(), "ASTGNN");
}

TEST(GmanTest, WellFormed) {
  sstban::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kP;
  config.output_len = kQ;
  config.num_features = 1;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  GmanLite model(config);
  ExpectModelWellFormed(&model);
  EXPECT_EQ(model.name(), "GMAN");
}

TEST(DcrnnTest, MultiFeatureSupport) {
  graph::TrafficGraph g = TestGraph();
  DcrnnLite model(g, 3, 8);
  ExpectModelWellFormed(&model, 3);
}

TEST(GwnetTest, MultiFeatureSupport) {
  graph::TrafficGraph g = TestGraph();
  GwnetLite model(g, 3, kQ, 8, 2);
  ExpectModelWellFormed(&model, 3);
}

}  // namespace
}  // namespace sstban::baselines

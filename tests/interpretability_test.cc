// Tests for the attention-probability introspection API used by the
// reference-point (cluster-center) analysis.

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/rng.h"
#include "nn/attention.h"
#include "sstban/bottleneck_attention.h"
#include "tensor/ops.h"

namespace sstban {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

t::Tensor Rand(t::Shape shape, uint64_t seed) {
  core::Rng rng(seed);
  return t::Tensor::RandomNormal(std::move(shape), rng, 0.0f, 0.8f);
}

TEST(AttentionProbsTest, ShapeAndNormalization) {
  core::Rng rng(1);
  nn::MultiHeadAttention mha(6, 6, 6, 2, rng);
  ag::Variable q(Rand({2, 4, 6}, 2));
  ag::Variable kv(Rand({2, 7, 6}, 3));
  t::Tensor probs;
  mha.Forward(q, kv, kv, nullptr, &probs);
  ASSERT_EQ(probs.shape(), t::Shape({2, 4, 7}));
  // Head-averaged rows still sum to 1 (each head's row sums to 1).
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t i = 0; i < 4; ++i) {
      double row = 0;
      for (int64_t j = 0; j < 7; ++j) row += probs.at({b, i, j});
      EXPECT_NEAR(row, 1.0, 1e-5);
    }
  }
}

TEST(AttentionProbsTest, MaskedKeysGetZeroProbability) {
  core::Rng rng(4);
  nn::MultiHeadAttention mha(4, 4, 4, 2, rng);
  ag::Variable q(Rand({1, 3, 4}, 5));
  ag::Variable kv(Rand({1, 5, 4}, 6));
  t::Tensor mask = t::Tensor::Ones(t::Shape{1, 5});
  mask.at({0, 1}) = 0.0f;
  mask.at({0, 4}) = 0.0f;
  t::Tensor probs;
  mha.Forward(q, kv, kv, &mask, &probs);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(probs.at({0, i, 1}), 0.0f, 1e-6);
    EXPECT_NEAR(probs.at({0, i, 4}), 0.0f, 1e-6);
  }
}

TEST(AttentionProbsTest, NullPointerPathUnchanged) {
  core::Rng rng(7);
  nn::MultiHeadAttention mha(4, 4, 4, 2, rng);
  ag::Variable q(Rand({1, 3, 4}, 8));
  t::Tensor probs;
  ag::Variable with = mha.Forward(q, q, q, nullptr, &probs);
  ag::Variable without = mha.Forward(q, q, q);
  EXPECT_TRUE(t::AllClose(with.value(), without.value(), 0, 0));
}

TEST(BottleneckAssignmentTest, ShapeMatchesReferenceCount) {
  core::Rng rng(9);
  sstban::BottleneckAttention attn(6, 4, 3, 2, rng);
  ag::Variable x(Rand({2, 10, 6}, 10));
  t::Tensor assignments;
  attn.Forward(x, nullptr, &assignments);
  ASSERT_EQ(assignments.shape(), t::Shape({2, 10, 3}));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t i = 0; i < 10; ++i) {
      double row = 0;
      for (int64_t r = 0; r < 3; ++r) row += assignments.at({b, i, r});
      EXPECT_NEAR(row, 1.0, 1e-5);
    }
  }
}

}  // namespace
}  // namespace sstban

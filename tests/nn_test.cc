#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/rng.h"
#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/gru_cell.h"
#include "nn/init.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/ops.h"

namespace sstban::nn {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

t::Tensor Rand(t::Shape shape, uint64_t seed) {
  core::Rng rng(seed);
  return t::Tensor::RandomNormal(std::move(shape), rng, 0.0f, 0.5f);
}

TEST(InitTest, XavierBoundsRespectFans) {
  core::Rng rng(1);
  t::Tensor w = XavierUniform(t::Shape{100, 50}, rng);
  float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(t::MaxAll(w), bound);
  EXPECT_GE(t::MinAll(w), -bound);
}

TEST(InitTest, HeNormalVariance) {
  core::Rng rng(2);
  t::Tensor w = HeNormal(t::Shape{200, 100}, rng);
  double sum_sq = 0;
  for (int64_t i = 0; i < w.size(); ++i) sum_sq += w.data()[i] * w.data()[i];
  EXPECT_NEAR(sum_sq / w.size(), 2.0 / 200.0, 2e-3);
}

TEST(ModuleTest, ParameterRegistryWalksTree) {
  core::Rng rng(3);
  Mlp mlp({4, 8, 2}, rng);
  // Two Linear layers, each with weight+bias.
  auto named = mlp.NamedParameters();
  EXPECT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "layer0.weight");
  EXPECT_EQ(mlp.NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(ModuleTest, SetTrainingPropagates) {
  core::Rng rng(4);
  Mlp mlp({2, 2}, rng);
  EXPECT_TRUE(mlp.training());
  mlp.SetTraining(false);
  EXPECT_FALSE(mlp.training());
}

TEST(ModuleTest, ZeroGradClearsAll) {
  core::Rng rng(5);
  Linear lin(3, 2, rng);
  ag::Variable x(Rand({4, 3}, 6));
  ag::SumAll(ag::Square(lin.Forward(x))).Backward();
  for (auto& p : lin.Parameters()) EXPECT_TRUE(p.has_grad());
  lin.ZeroGrad();
  for (auto& p : lin.Parameters()) EXPECT_FALSE(p.has_grad());
}

TEST(LinearTest, ShapeAndAffine) {
  core::Rng rng(7);
  Linear lin(3, 5, rng);
  ag::Variable y = lin.Forward(ag::Variable(Rand({2, 4, 3}, 8)));
  EXPECT_EQ(y.shape(), t::Shape({2, 4, 5}));
  // Zero input -> output equals the bias row everywhere.
  ag::Variable zero = lin.Forward(ag::Variable(t::Tensor::Zeros(t::Shape{2, 3})));
  EXPECT_TRUE(t::AllClose(t::Slice(zero.value(), 0, 0, 1),
                          t::Slice(zero.value(), 0, 1, 1)));
}

TEST(LinearTest, NoBiasOption) {
  core::Rng rng(9);
  Linear lin(3, 2, rng, /*use_bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
  ag::Variable zero = lin.Forward(ag::Variable(t::Tensor::Zeros(t::Shape{1, 3})));
  EXPECT_FLOAT_EQ(t::SumAll(zero.value()).item(), 0.0f);
}

TEST(LinearTest, GradientsFlowToWeights) {
  core::Rng rng(10);
  Linear lin(2, 2, rng);
  ag::SumAll(ag::Square(lin.Forward(ag::Variable(Rand({3, 2}, 11))))).Backward();
  for (auto& p : lin.Parameters()) {
    EXPECT_TRUE(p.has_grad());
    EXPECT_GT(t::SumAll(t::Abs(p.grad())).item(), 0.0f);
  }
}

TEST(MlpTest, HiddenActivationApplied) {
  core::Rng rng(12);
  Mlp relu_mlp({2, 4, 1}, rng, Activation::kRelu);
  ag::Variable y = relu_mlp.Forward(ag::Variable(Rand({5, 2}, 13)));
  EXPECT_EQ(y.shape(), t::Shape({5, 1}));
}

TEST(MlpTest, OutputActivation) {
  core::Rng rng(14);
  Mlp mlp({2, 3, 2}, rng, Activation::kRelu, Activation::kSigmoid);
  ag::Variable y = mlp.Forward(ag::Variable(Rand({4, 2}, 15)));
  EXPECT_LE(t::MaxAll(y.value()), 1.0f);
  EXPECT_GE(t::MinAll(y.value()), 0.0f);
}

TEST(LayerNormTest, NormalizesLastAxis) {
  LayerNorm norm(6);
  ag::Variable y = norm.Forward(ag::Variable(Rand({3, 6}, 16)));
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 6; ++c) mean += y.value().at({r, c});
    mean /= 6;
    for (int64_t c = 0; c < 6; ++c) {
      double d = y.value().at({r, c}) - mean;
      var += d * d;
    }
    var /= 6;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GradCheckThroughModule) {
  LayerNorm norm(4);
  sstban::testing::ExpectGradientsMatch(
      [&norm](std::vector<ag::Variable>& v) {
        return ag::SumAll(ag::Square(norm.Forward(v[0])));
      },
      {Rand({2, 4}, 17)});
}

TEST(AttentionTest, OutputShape) {
  core::Rng rng(18);
  MultiHeadAttention mha(/*query_dim=*/8, /*kv_dim=*/6, /*out_dim=*/4,
                         /*num_heads=*/2, rng);
  ag::Variable q(Rand({3, 5, 8}, 19));
  ag::Variable k(Rand({3, 7, 6}, 20));
  ag::Variable v(Rand({3, 7, 6}, 21));
  ag::Variable out = mha.Forward(q, k, v);
  EXPECT_EQ(out.shape(), t::Shape({3, 5, 4}));
}

TEST(AttentionTest, KeyMaskRemovesInfluence) {
  core::Rng rng(22);
  MultiHeadAttention mha(4, 4, 4, 2, rng);
  ag::Variable q(Rand({1, 2, 4}, 23));
  t::Tensor kv = Rand({1, 3, 4}, 24);
  t::Tensor mask = t::Tensor::Ones(t::Shape{1, 3});
  mask.at({0, 2}) = 0.0f;  // exclude key 2
  ag::Variable out_masked =
      mha.Forward(q, ag::Variable(kv), ag::Variable(kv), &mask);
  // Perturbing the masked key must not change the output.
  t::Tensor kv2 = kv.Clone();
  kv2.at({0, 2, 0}) += 10.0f;
  kv2.at({0, 2, 3}) -= 7.0f;
  ag::Variable out_masked2 =
      mha.Forward(q, ag::Variable(kv2), ag::Variable(kv2), &mask);
  EXPECT_TRUE(t::AllClose(out_masked.value(), out_masked2.value(), 1e-4f, 1e-4f));
  // Sanity: without the mask the perturbation does change the output.
  ag::Variable a = mha.Forward(q, ag::Variable(kv), ag::Variable(kv));
  ag::Variable b = mha.Forward(q, ag::Variable(kv2), ag::Variable(kv2));
  EXPECT_FALSE(t::AllClose(a.value(), b.value(), 1e-4f, 1e-4f));
}

TEST(AttentionTest, FullyMaskedKeysStayFinite) {
  core::Rng rng(25);
  MultiHeadAttention mha(4, 4, 4, 2, rng);
  ag::Variable q(Rand({1, 2, 4}, 26));
  ag::Variable kv(Rand({1, 3, 4}, 27));
  t::Tensor mask = t::Tensor::Zeros(t::Shape{1, 3});
  ag::Variable out = mha.Forward(q, kv, kv, &mask);
  EXPECT_FALSE(t::HasNonFinite(out.value()));
}

TEST(AttentionTest, GradientsFlowThroughAllProjections) {
  core::Rng rng(28);
  MultiHeadAttention mha(4, 4, 4, 2, rng);
  ag::Variable q(Rand({2, 3, 4}, 29));
  ag::SumAll(ag::Square(mha.Forward(q, q, q))).Backward();
  for (auto& [name, p] : mha.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

TEST(AttentionTest, AttendsToCorrectKey) {
  // With identity-like behavior validated statistically: a query identical
  // to one key should put the most attention mass on that key, so the
  // output should be closer to that key's value row.
  core::Rng rng(30);
  MultiHeadAttention mha(4, 4, 4, 1, rng, /*head_dim=*/4);
  // Single distinguishing value row.
  t::Tensor k = t::Tensor::Zeros(t::Shape{1, 2, 4});
  k.at({0, 0, 0}) = 5.0f;
  k.at({0, 1, 1}) = 5.0f;
  ag::Variable out = mha.Forward(ag::Variable(k), ag::Variable(k),
                                 ag::Variable(k));
  EXPECT_EQ(out.shape(), t::Shape({1, 2, 4}));
  EXPECT_FALSE(t::HasNonFinite(out.value()));
}

TEST(EmbeddingTest, LookupSelectsRows) {
  core::Rng rng(31);
  Embedding emb(5, 3, rng);
  ag::Variable rows = emb.Forward({1, 4, 1});
  EXPECT_EQ(rows.shape(), t::Shape({3, 3}));
  EXPECT_TRUE(t::AllClose(t::Slice(rows.value(), 0, 0, 1),
                          t::Slice(rows.value(), 0, 2, 1)));
}

TEST(GruCellTest, ShapeAndStateUpdate) {
  core::Rng rng(32);
  GruCell cell(3, 5, rng);
  ag::Variable x(Rand({2, 3}, 33));
  ag::Variable h(t::Tensor::Zeros(t::Shape{2, 5}));
  ag::Variable h1 = cell.Forward(x, h);
  EXPECT_EQ(h1.shape(), t::Shape({2, 5}));
  // Hidden state must change when input is nonzero.
  EXPECT_GT(t::SumAll(t::Abs(h1.value())).item(), 0.0f);
}

TEST(GruCellTest, HiddenStateIsBounded) {
  core::Rng rng(34);
  GruCell cell(2, 4, rng);
  ag::Variable h(t::Tensor::Zeros(t::Shape{1, 4}));
  for (int step = 0; step < 50; ++step) {
    ag::Variable x(Rand({1, 2}, 35 + step));
    h = cell.Forward(x, h);
  }
  // GRU state is a convex combination of tanh outputs -> |h| <= 1.
  EXPECT_LE(t::MaxAll(t::Abs(h.value())), 1.0f + 1e-5f);
}

TEST(GruCellTest, GradientsReachParameters) {
  core::Rng rng(36);
  GruCell cell(2, 3, rng);
  ag::Variable x(Rand({2, 2}, 37));
  ag::Variable h(t::Tensor::Zeros(t::Shape{2, 3}));
  ag::SumAll(ag::Square(cell.Forward(x, cell.Forward(x, h)))).Backward();
  for (auto& [name, p] : cell.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

}  // namespace
}  // namespace sstban::nn

#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/traffic_graph.h"
#include "tensor/ops.h"

namespace sstban::graph {
namespace {

TEST(TrafficGraphTest, AddEdgeUpdatesNeighborLists) {
  TrafficGraph g(3, {{0, 0}, {1, 0}, {2, 0}});
  g.AddEdge(0, 1, 0.5f);
  g.AddEdge(1, 2, 0.8f);
  EXPECT_EQ(g.Successors(0), (std::vector<int64_t>{1}));
  EXPECT_EQ(g.Predecessors(2), (std::vector<int64_t>{1}));
  EXPECT_TRUE(g.Successors(2).empty());
}

TEST(TrafficGraphTest, AdjacencyMatrixMatchesEdges) {
  TrafficGraph g(3, {{0, 0}, {1, 0}, {2, 0}});
  g.AddEdge(0, 1, 0.5f);
  tensor::Tensor a = g.Adjacency();
  EXPECT_FLOAT_EQ(a.at({0, 1}), 0.5f);
  EXPECT_FLOAT_EQ(a.at({1, 0}), 0.0f);
  EXPECT_FLOAT_EQ(a.at({0, 0}), 0.0f);
}

TEST(TrafficGraphTest, RandomCorridorIsConnectedAlongCorridors) {
  core::Rng rng(1);
  TrafficGraph g = TrafficGraph::RandomCorridor(24, 3, rng);
  EXPECT_EQ(g.num_nodes(), 24);
  // Every corridor of length k contributes k-1 edges: at least
  // num_nodes - num_corridors edges total.
  EXPECT_GE(static_cast<int64_t>(g.edges().size()), 24 - 3);
  // Each node has at most a handful of neighbors (corridor + interchanges).
  for (int64_t v = 0; v < 24; ++v) {
    EXPECT_LE(g.Successors(v).size(), 5u);
  }
}

TEST(TrafficGraphTest, RandomCorridorDeterministicInSeed) {
  core::Rng rng1(7), rng2(7);
  TrafficGraph a = TrafficGraph::RandomCorridor(16, 2, rng1);
  TrafficGraph b = TrafficGraph::RandomCorridor(16, 2, rng2);
  EXPECT_EQ(a.edges().size(), b.edges().size());
  EXPECT_TRUE(tensor::AllClose(a.Adjacency(), b.Adjacency()));
}

TEST(TrafficGraphTest, NormalizedAdjacencyIsSymmetricWithSelfLoops) {
  core::Rng rng(2);
  TrafficGraph g = TrafficGraph::RandomCorridor(12, 2, rng);
  tensor::Tensor norm = g.NormalizedAdjacency();
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_GT(norm.at({i, i}), 0.0f);  // self loop survives normalization
    for (int64_t j = 0; j < 12; ++j) {
      EXPECT_NEAR(norm.at({i, j}), norm.at({j, i}), 1e-6f);
    }
  }
}

TEST(TrafficGraphTest, RandomWalkRowsSumToOneOrZero) {
  core::Rng rng(3);
  TrafficGraph g = TrafficGraph::RandomCorridor(12, 2, rng);
  for (bool reverse : {false, true}) {
    tensor::Tensor walk = g.RandomWalkMatrix(reverse);
    for (int64_t i = 0; i < 12; ++i) {
      double row_sum = 0;
      for (int64_t j = 0; j < 12; ++j) row_sum += walk.at({i, j});
      EXPECT_TRUE(std::abs(row_sum - 1.0) < 1e-5 || row_sum == 0.0)
          << "row " << i << " sums to " << row_sum;
    }
  }
}

TEST(TrafficGraphTest, ReverseWalkUsesTransposedEdges) {
  TrafficGraph g(2, {{0, 0}, {1, 0}});
  g.AddEdge(0, 1, 1.0f);
  tensor::Tensor forward = g.RandomWalkMatrix(false);
  tensor::Tensor reverse = g.RandomWalkMatrix(true);
  EXPECT_FLOAT_EQ(forward.at({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(reverse.at({1, 0}), 1.0f);
}

}  // namespace
}  // namespace sstban::graph

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sstban::tensor {
namespace {

Tensor T(std::initializer_list<int64_t> shape, std::vector<float> values) {
  return Tensor::FromVector(Shape(shape), std::move(values));
}

TEST(ElementwiseTest, AddSameShape) {
  Tensor c = Add(T({2, 2}, {1, 2, 3, 4}), T({2, 2}, {10, 20, 30, 40}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{11, 22, 33, 44}));
}

TEST(ElementwiseTest, SubMulDiv) {
  Tensor a = T({3}, {4, 9, 16});
  Tensor b = T({3}, {2, 3, 4});
  EXPECT_EQ(Sub(a, b).ToVector(), (std::vector<float>{2, 6, 12}));
  EXPECT_EQ(Mul(a, b).ToVector(), (std::vector<float>{8, 27, 64}));
  EXPECT_EQ(Div(a, b).ToVector(), (std::vector<float>{2, 3, 4}));
}

TEST(ElementwiseTest, BroadcastScalar) {
  Tensor c = Add(T({2, 2}, {1, 2, 3, 4}), Tensor::Scalar(10.0f));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{11, 12, 13, 14}));
  Tensor d = Sub(Tensor::Scalar(10.0f), T({2}, {1, 2}));
  EXPECT_EQ(d.ToVector(), (std::vector<float>{9, 8}));
}

TEST(ElementwiseTest, BroadcastRowAndColumn) {
  // [2,3] + [3] broadcasts over rows.
  Tensor c = Add(T({2, 3}, {0, 0, 0, 10, 10, 10}), T({3}, {1, 2, 3}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{1, 2, 3, 11, 12, 13}));
  // [2,1] * [1,3] -> outer product shape.
  Tensor d = Mul(T({2, 1}, {2, 3}), T({1, 3}, {1, 10, 100}));
  EXPECT_EQ(d.shape(), Shape({2, 3}));
  EXPECT_EQ(d.ToVector(), (std::vector<float>{2, 20, 200, 3, 30, 300}));
}

TEST(ElementwiseTest, Broadcast4D) {
  // The STE pattern: [B,L,1,d] + [1,1,N,d].
  Tensor a = Tensor::Ones(Shape{2, 3, 1, 4});
  Tensor b = Tensor::Full(Shape{1, 1, 5, 4}, 2.0f);
  Tensor c = Add(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 3, 5, 4}));
  for (float v : c.ToVector()) EXPECT_EQ(v, 3.0f);
}

TEST(ElementwiseTest, UnaryFunctions) {
  Tensor a = T({4}, {-2, -0.5, 0.5, 2});
  EXPECT_EQ(Neg(a).ToVector(), (std::vector<float>{2, 0.5, -0.5, -2}));
  EXPECT_EQ(Abs(a).ToVector(), (std::vector<float>{2, 0.5, 0.5, 2}));
  EXPECT_EQ(Sign(a).ToVector(), (std::vector<float>{-1, -1, 1, 1}));
  EXPECT_EQ(Relu(a).ToVector(), (std::vector<float>{0, 0, 0.5, 2}));
  EXPECT_EQ(Square(a).ToVector(), (std::vector<float>{4, 0.25, 0.25, 4}));
  Tensor s = Sigmoid(T({1}, {0}));
  EXPECT_FLOAT_EQ(s.item(), 0.5f);
  EXPECT_FLOAT_EQ(Tanh(T({1}, {0})).item(), 0.0f);
  EXPECT_NEAR(Exp(T({1}, {1})).item(), std::exp(1.0f), 1e-5);
  EXPECT_NEAR(Log(T({1}, {std::exp(2.0f)})).item(), 2.0f, 1e-5);
  EXPECT_FLOAT_EQ(Sqrt(T({1}, {9})).item(), 3.0f);
}

TEST(ReductionTest, SumAllMeanAll) {
  Tensor a = T({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(a).item(), 2.5f);
  EXPECT_FLOAT_EQ(MaxAll(a), 4.0f);
  EXPECT_FLOAT_EQ(MinAll(a), 1.0f);
}

TEST(ReductionTest, SumAlongAxis) {
  Tensor a = T({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor rows = Sum(a, 1);
  EXPECT_EQ(rows.shape(), Shape({2}));
  EXPECT_EQ(rows.ToVector(), (std::vector<float>{6, 15}));
  Tensor cols = Sum(a, 0, /*keepdim=*/true);
  EXPECT_EQ(cols.shape(), Shape({1, 3}));
  EXPECT_EQ(cols.ToVector(), (std::vector<float>{5, 7, 9}));
}

TEST(ReductionTest, MeanAndMaxAlongAxis) {
  Tensor a = T({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(Mean(a, 1).ToVector(), (std::vector<float>{2, 5}));
  EXPECT_EQ(Max(a, 0).ToVector(), (std::vector<float>{4, 5, 6}));
  EXPECT_EQ(Max(a, -1).ToVector(), (std::vector<float>{3, 6}));
}

TEST(ReductionTest, ReduceToShapeSumsBroadcastAxes) {
  Tensor grad = Tensor::Ones(Shape{2, 3, 4});
  Tensor r1 = ReduceToShape(grad, Shape{4});
  EXPECT_EQ(r1.ToVector(), (std::vector<float>{6, 6, 6, 6}));
  Tensor r2 = ReduceToShape(grad, Shape{2, 1, 4});
  EXPECT_EQ(r2.shape(), Shape({2, 1, 4}));
  EXPECT_EQ(r2.ToVector()[0], 3.0f);
  Tensor r3 = ReduceToShape(grad, Shape{2, 3, 4});
  EXPECT_TRUE(AllClose(r3, grad));
}

TEST(MovementTest, Transpose2D) {
  Tensor a = T({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor at = Transpose(a);
  EXPECT_EQ(at.shape(), Shape({3, 2}));
  EXPECT_EQ(at.ToVector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(MovementTest, PermuteMatchesManualIndexing) {
  core::Rng rng(3);
  Tensor a = Tensor::RandomNormal(Shape{2, 3, 4, 5}, rng);
  Tensor p = Permute(a, {0, 2, 1, 3});  // exercises the memcpy fast path
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t j = 0; j < 3; ++j)
      for (int64_t k = 0; k < 4; ++k)
        for (int64_t l = 0; l < 5; ++l)
          EXPECT_EQ(p.at({i, k, j, l}), a.at({i, j, k, l}));
}

TEST(MovementTest, PermuteLastAxisMoved) {
  core::Rng rng(4);
  Tensor a = Tensor::RandomNormal(Shape{3, 4, 5}, rng);
  Tensor p = Permute(a, {2, 0, 1});  // exercises the general odometer path
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 4; ++j)
      for (int64_t k = 0; k < 5; ++k)
        EXPECT_EQ(p.at({k, i, j}), a.at({i, j, k}));
}

TEST(MovementTest, PermuteRoundTrip) {
  core::Rng rng(5);
  Tensor a = Tensor::RandomNormal(Shape{2, 3, 4}, rng);
  Tensor back = Permute(Permute(a, {1, 2, 0}), {2, 0, 1});
  EXPECT_TRUE(AllClose(a, back));
}

TEST(MovementTest, ConcatAxis0And1) {
  Tensor a = T({1, 2}, {1, 2});
  Tensor b = T({1, 2}, {3, 4});
  Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), Shape({2, 2}));
  EXPECT_EQ(c0.ToVector(), (std::vector<float>{1, 2, 3, 4}));
  Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), Shape({1, 4}));
  EXPECT_EQ(c1.ToVector(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(MovementTest, ConcatNegativeAxis) {
  Tensor a = T({2, 1}, {1, 2});
  Tensor b = T({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, -1);
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{1, 3, 4, 2, 5, 6}));
}

TEST(MovementTest, SliceMiddleAxis) {
  Tensor a = T({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = Slice(a, 1, 1, 2);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{2, 3, 6, 7}));
}

TEST(MovementTest, SliceConcatRoundTrip) {
  core::Rng rng(6);
  Tensor a = Tensor::RandomNormal(Shape{3, 5, 2}, rng);
  Tensor parts = Concat({Slice(a, 1, 0, 2), Slice(a, 1, 2, 3)}, 1);
  EXPECT_TRUE(AllClose(a, parts));
}

TEST(MovementTest, RepeatAxis) {
  Tensor a = T({1, 2}, {1, 2});
  Tensor r = RepeatAxis(a, 0, 3);
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_EQ(r.ToVector(), (std::vector<float>{1, 2, 1, 2, 1, 2}));
}

TEST(SoftmaxTest, RowsSumToOne) {
  core::Rng rng(8);
  Tensor a = Tensor::RandomNormal(Shape{4, 7}, rng, 0.0f, 3.0f);
  Tensor s = Softmax(a);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 7; ++c) sum += s.at({r, c});
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeInputs) {
  Tensor a = T({1, 3}, {1000, 1000, 1000});
  Tensor s = Softmax(a);
  EXPECT_FALSE(HasNonFinite(s));
  EXPECT_NEAR(s.at({0, 0}), 1.0f / 3.0f, 1e-5);
}

TEST(SoftmaxTest, MaskExcludesKeys) {
  Tensor a = T({1, 3}, {1, 2, 3});
  Tensor mask = T({1, 3}, {0, -1e9f, 0});
  Tensor s = SoftmaxWithMask(a, mask);
  EXPECT_NEAR(s.at({0, 1}), 0.0f, 1e-6);
  EXPECT_NEAR(s.at({0, 0}) + s.at({0, 2}), 1.0f, 1e-5);
}

TEST(SoftmaxTest, FullyMaskedRowDegradesToUniform) {
  Tensor a = T({1, 4}, {1, 2, 3, 4});
  Tensor mask = Tensor::Full(Shape{1, 4}, -1e9f);
  Tensor s = SoftmaxWithMask(a, mask);
  EXPECT_FALSE(HasNonFinite(s));
  for (int64_t c = 0; c < 4; ++c) EXPECT_NEAR(s.at({0, c}), 0.25f, 1e-4);
}

TEST(PredicateTest, AllClose) {
  Tensor a = T({2}, {1.0f, 2.0f});
  Tensor b = T({2}, {1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, T({2}, {1.1f, 2.0f})));
  EXPECT_FALSE(AllClose(a, T({1, 2}, {1.0f, 2.0f})));  // shape mismatch
}

TEST(PredicateTest, HasNonFinite) {
  Tensor a = T({2}, {1.0f, 2.0f});
  EXPECT_FALSE(HasNonFinite(a));
  a.data()[1] = std::nanf("");
  EXPECT_TRUE(HasNonFinite(a));
  a.data()[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(HasNonFinite(a));
}

}  // namespace
}  // namespace sstban::tensor

// Tests for the src/serving/ inference stack: queue backpressure, deadline
// handling, batched-vs-sequential numerical equivalence, zero-downtime model
// hot-swap under concurrent load, graceful shutdown draining, checkpoint
// robustness (the registry's safety depends on LoadParameters rejecting
// partial files), and the stats reports.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "data/synthetic_world.h"
#include "nn/serialization.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "serving/request_queue.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/forecast_service.h"

namespace sstban::serving {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 4;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 12;

std::shared_ptr<data::TrafficDataset> TinyWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 2;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 6;
  config.seed = 50;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig TinyConfig(uint64_t seed = 1) {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.seed = seed;
  return config;
}

ServerOptions TinyServerOptions() {
  ServerOptions options;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = kStepsPerDay;
  options.num_nodes = kNodes;
  options.num_features = kFeatures;
  options.max_batch = 8;
  options.max_wait = std::chrono::milliseconds(20);
  options.queue_capacity = 64;
  return options;
}

ForecastRequest RequestAt(const data::TrafficDataset& dataset, int64_t start) {
  ForecastRequest request;
  request.recent = t::Slice(dataset.signals, 0, start, kSteps);
  request.first_step = start;
  return request;
}

// A model whose forward pass blocks until the test releases it, so tests can
// deterministically hold a batch "in flight" while they poke at the queue.
class GateModel : public training::TrafficModel {
 public:
  ag::Variable Predict(const t::Tensor& x_norm,
                       const data::Batch& batch) override {
    (void)batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    return ag::Variable(t::Tensor::Zeros(
        t::Shape{x_norm.dim(0), kSteps, x_norm.dim(2), x_norm.dim(3)}));
  }
  std::string name() const override { return "Gate"; }

  // Blocks until `count` forward passes have started.
  void WaitEntered(int count) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this, count] { return entered_ >= count; });
  }
  // Lets every current and future forward pass through.
  void Release() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_, release_cv_;
  int entered_ = 0;
  bool released_ = false;
};

std::unique_ptr<ModelRegistry> GateRegistry(GateModel** out_model) {
  core::Rng rng(3);
  data::Normalizer norm = data::Normalizer::Fit(
      t::Tensor::RandomNormal(t::Shape{32, kFeatures}, rng));
  auto registry = std::make_unique<ModelRegistry>(
      [] { return std::make_unique<GateModel>(); }, norm);
  auto model = std::make_unique<GateModel>();
  *out_model = model.get();
  registry->Install(std::move(model));
  return registry;
}

// -- RequestQueue ------------------------------------------------------------

TEST(RequestQueueTest, BackpressureRejectsWhenFull) {
  RequestQueue queue(2);
  PendingRequest a, b, c;
  EXPECT_TRUE(queue.Push(&a).ok());
  EXPECT_TRUE(queue.Push(&b).ok());
  core::Status overflow = queue.Push(&c);
  EXPECT_EQ(overflow.code(), core::StatusCode::kUnavailable);
  EXPECT_EQ(queue.depth(), 2);
}

TEST(RequestQueueTest, RejectsExpiredBeforeEnqueue) {
  RequestQueue queue(4);
  PendingRequest req;
  req.request.deadline = Clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(queue.Push(&req).code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queue.depth(), 0);
}

TEST(RequestQueueTest, ClosedQueueRejectsPushButDrains) {
  RequestQueue queue(4);
  PendingRequest a;
  EXPECT_TRUE(queue.Push(&a).ok());
  queue.Close();
  PendingRequest b;
  EXPECT_EQ(queue.Push(&b).code(), core::StatusCode::kUnavailable);
  EXPECT_TRUE(queue.PopBlocking().has_value());   // drain the survivor
  EXPECT_FALSE(queue.PopBlocking().has_value());  // closed + empty
}

// -- Submission validation ---------------------------------------------------

TEST(ForecastServerTest, RejectsMismatchedGeometry) {
  GateModel* gate = nullptr;
  std::unique_ptr<ModelRegistry> registry = GateRegistry(&gate);
  ForecastServer server(TinyServerOptions(), registry.get());
  ASSERT_TRUE(server.Start().ok());
  gate->Release();

  ForecastRequest wrong_nodes;
  wrong_nodes.recent = t::Tensor::Zeros(t::Shape{kSteps, kNodes + 1, 1});
  auto rejected = server.Submit(std::move(wrong_nodes));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), core::StatusCode::kInvalidArgument);
  // The message names both the expected geometry and the offending shape.
  EXPECT_NE(rejected.status().message().find("[6, 4, 1]"), std::string::npos);
  EXPECT_NE(rejected.status().message().find("[6, 5, 1]"), std::string::npos);
  server.Shutdown();
  EXPECT_EQ(server.stats().TakeSnapshot().rejected_invalid, 1);
}

TEST(ForecastServerTest, RejectsAlreadyExpiredDeadline) {
  GateModel* gate = nullptr;
  std::unique_ptr<ModelRegistry> registry = GateRegistry(&gate);
  ForecastServer server(TinyServerOptions(), registry.get());
  ASSERT_TRUE(server.Start().ok());
  gate->Release();

  ForecastRequest request;
  request.recent = t::Tensor::Zeros(t::Shape{kSteps, kNodes, kFeatures});
  request.deadline = Clock::now() - std::chrono::milliseconds(5);
  auto rejected = server.Submit(std::move(request));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), core::StatusCode::kDeadlineExceeded);
  server.Shutdown();
  EXPECT_EQ(server.stats().TakeSnapshot().rejected_deadline, 1);
}

// -- Backpressure and deadlines through the full server ----------------------

TEST(ForecastServerTest, FullQueueShedsLoadWhileBatchInFlight) {
  GateModel* gate = nullptr;
  std::unique_ptr<ModelRegistry> registry = GateRegistry(&gate);
  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  options.queue_capacity = 2;
  ForecastServer server(options, registry.get());
  ASSERT_TRUE(server.Start().ok());

  t::Tensor window = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  auto submit = [&] {
    ForecastRequest request;
    request.recent = window;
    return server.Submit(std::move(request));
  };

  auto first = submit();
  ASSERT_TRUE(first.ok());
  gate->WaitEntered(1);  // the batcher holds request 1 in a forward pass
  auto second = submit();
  auto third = submit();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  auto overflow = submit();  // queue (capacity 2) is now full
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), core::StatusCode::kUnavailable);

  gate->Release();
  EXPECT_TRUE(first.value().get().ok());
  EXPECT_TRUE(second.value().get().ok());
  EXPECT_TRUE(third.value().get().ok());
  server.Shutdown();
  EXPECT_EQ(server.stats().TakeSnapshot().rejected_full, 1);
}

TEST(ForecastServerTest, DeadlineExpiresWhileQueuedIsRejectedWithoutCompute) {
  GateModel* gate = nullptr;
  std::unique_ptr<ModelRegistry> registry = GateRegistry(&gate);
  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  ForecastServer server(options, registry.get());
  ASSERT_TRUE(server.Start().ok());

  ForecastRequest first;
  first.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  auto first_future = server.Submit(std::move(first));
  ASSERT_TRUE(first_future.ok());
  gate->WaitEntered(1);

  ForecastRequest doomed;
  doomed.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  doomed.deadline = Clock::now() + std::chrono::milliseconds(30);
  auto doomed_future = server.Submit(std::move(doomed));
  ASSERT_TRUE(doomed_future.ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  gate->Release();
  ForecastResult result = doomed_future.value().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(first_future.value().get().ok());
  server.Shutdown();
  EXPECT_EQ(server.stats().TakeSnapshot().rejected_deadline, 1);
}

// -- Numerical equivalence ---------------------------------------------------

TEST(ForecastServerTest, BatchedMatchesSequentialForecastService) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();

  // Same config + seed => bit-identical weights in both deployment paths.
  model_ns::SstbanModel sequential_model(config);
  training::ForecastService service(&sequential_model, norm, kSteps, kSteps,
                                    kStepsPerDay, kNodes, kFeatures);

  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ServerOptions options = TinyServerOptions();
  options.max_wait = std::chrono::milliseconds(100);  // coalesce all six
  ForecastServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  std::vector<int64_t> starts = {0, 7, 13, 22, 30, 41};
  std::vector<ForecastFuture> futures;
  for (int64_t start : starts) {
    auto submitted = server.Submit(RequestAt(*dataset, start));
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted.value()));
  }
  for (size_t i = 0; i < starts.size(); ++i) {
    ForecastResult batched = futures[i].get();
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    auto sequential = service.Forecast(
        t::Slice(dataset->signals, 0, starts[i], kSteps), starts[i]);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    EXPECT_TRUE(t::AllClose(batched.value().forecast, sequential.value(), 1e-5f,
                            1e-5f))
        << "request " << i << " diverged between batched and sequential paths";
    EXPECT_FALSE(batched.value().degraded());
    EXPECT_EQ(batched.value().served_by, ServedBy::kModel);
    EXPECT_EQ(batched.value().model_version, 1);
  }
  server.Shutdown();
  // The six requests really were coalesced (fewer passes than requests).
  auto snap = server.stats().TakeSnapshot();
  EXPECT_EQ(snap.completed, 6);
  EXPECT_LT(snap.batches, 6);
}

// -- Hot swap ----------------------------------------------------------------

TEST(ModelRegistryTest, FailedLoadKeepsCurrentVersion) {
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      data::Normalizer());
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  auto before = registry.current();
  ASSERT_NE(before, nullptr);

  std::string bogus = testing::TempDir() + "/bogus.sstb";
  std::ofstream(bogus, std::ios::binary) << "not a checkpoint";
  core::Status status = registry.LoadVersion(bogus);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(registry.current().get(), before.get());  // rollback = unchanged
  EXPECT_EQ(registry.current_version(), before->version);
  std::remove(bogus.c_str());
}

TEST(ForecastServerTest, HotSwapUnderConcurrentLoadLosesNothing) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();

  // Two checkpoints with genuinely different weights.
  std::string ckpt_v1 = testing::TempDir() + "/serving_v1.sstb";
  std::string ckpt_v2 = testing::TempDir() + "/serving_v2.sstb";
  {
    model_ns::SstbanConfig seeded = config;
    seeded.seed = 11;
    ASSERT_TRUE(
        nn::SaveParameters(model_ns::SstbanModel(seeded), ckpt_v1).ok());
    seeded.seed = 22;
    ASSERT_TRUE(
        nn::SaveParameters(model_ns::SstbanModel(seeded), ckpt_v2).ok());
  }

  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  ASSERT_TRUE(registry.LoadVersion(ckpt_v1).ok());
  ForecastServer server(TinyServerOptions(), &registry);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 3;
  constexpr int kPerClient = 20;
  std::atomic<int> failures{0};
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        int64_t start = (c * kPerClient + r) % 40;
        auto submitted = server.Submit(RequestAt(*dataset, start));
        if (!submitted.ok()) {
          failures.fetch_add(1);
          continue;
        }
        ForecastResult result = submitted.value().get();
        if (result.ok() && !t::HasNonFinite(result.value().forecast)) {
          successes.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
    });
  }

  // Swap back and forth while the clients hammer the server.
  ASSERT_TRUE(registry.LoadVersion(ckpt_v2).ok());
  ASSERT_TRUE(registry.LoadVersion(ckpt_v1).ok());
  ASSERT_TRUE(registry.LoadVersion(ckpt_v2).ok());
  for (std::thread& client : clients) client.join();
  server.Shutdown();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(successes.load(), kClients * kPerClient);
  EXPECT_EQ(registry.current_version(), 4);  // initial load + three swaps
  std::remove(ckpt_v1.c_str());
  std::remove(ckpt_v2.c_str());
}

// A hot-swap racing an in-flight batched Predict: the batch that was already
// running when Install(v2) landed must be served (and labeled) by v1 — the
// registry pin taken at batch start keeps the old version alive — while the
// next batch picks up v2. The CI TSan job runs this under ThreadSanitizer.
TEST(ForecastServerTest, HotSwapRacesInFlightBatchedPredict) {
  GateModel* gate_v1 = nullptr;
  std::unique_ptr<ModelRegistry> registry = GateRegistry(&gate_v1);
  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  ForecastServer server(options, registry.get());
  ASSERT_TRUE(server.Start().ok());

  // Pin v1 for the whole test: after the swap the batcher thread drops its
  // own v1 pin, and gate_v1 must stay valid for the Release() below.
  std::shared_ptr<const ModelRegistry::Served> v1_pin = registry->current();

  ForecastRequest in_flight;
  in_flight.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  auto first = server.Submit(std::move(in_flight));
  ASSERT_TRUE(first.ok());
  gate_v1->WaitEntered(1);  // v1's forward pass is running right now

  // Swap mid-flight. v2 must not block later passes, so pre-release it.
  auto v2 = std::make_unique<GateModel>();
  v2->Release();
  registry->Install(std::move(v2));
  ASSERT_EQ(registry->current_version(), 2);

  gate_v1->Release();
  ForecastResult first_result = first.value().get();
  ASSERT_TRUE(first_result.ok()) << first_result.status().ToString();
  EXPECT_EQ(first_result.value().model_version, 1);  // old version finished it

  ForecastRequest after_swap;
  after_swap.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  auto second = server.Submit(std::move(after_swap));
  ASSERT_TRUE(second.ok());
  ForecastResult second_result = second.value().get();
  ASSERT_TRUE(second_result.ok()) << second_result.status().ToString();
  EXPECT_EQ(second_result.value().model_version, 2);

  server.Shutdown();
  EXPECT_EQ(server.stats().TakeSnapshot().hot_swaps, 1);
}

// -- Deadline sweep ordering -------------------------------------------------

// Expired requests must be swept (DeadlineExceeded) BEFORE coalescing, not
// spend a model pass: a delay failpoint holds batch A in flight past B's
// deadline, so B can only terminate via the pre-batch sweep.
TEST(ForecastServerTest, ExpiredRequestIsSweptBeforeCoalescing) {
  struct ClearFailpoints {
    ~ClearFailpoints() { core::FailPoint::ClearAll(); }
  } guard;
  ASSERT_TRUE(core::FailPoint::Set("serve_batch_run", "delay(150)").ok());

  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;  // B can never ride along in A's batch
  options.max_wait = std::chrono::microseconds(0);
  ForecastServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  auto a = server.Submit(RequestAt(*dataset, 0));
  ASSERT_TRUE(a.ok());
  ForecastRequest doomed = RequestAt(*dataset, 3);
  doomed.deadline = Clock::now() + std::chrono::milliseconds(30);
  auto b = server.Submit(std::move(doomed));
  ASSERT_TRUE(b.ok());

  // A's (delayed) pass outlives B's deadline; the sweep then rejects B
  // without ever popping it into a batch.
  ForecastResult a_result = a.value().get();
  EXPECT_TRUE(a_result.ok()) << a_result.status().ToString();
  ForecastResult b_result = b.value().get();
  ASSERT_FALSE(b_result.ok());
  EXPECT_EQ(b_result.status().code(), core::StatusCode::kDeadlineExceeded);

  server.Shutdown();
  ServerStats::Snapshot snap = server.stats().TakeSnapshot();
  EXPECT_GE(snap.swept_expired, 1);  // rejected by the sweep, not pop-path
  EXPECT_EQ(snap.completed, 1);
}

// -- Graceful shutdown -------------------------------------------------------

TEST(ForecastServerTest, ShutdownDrainsInFlightRequests) {
  GateModel* gate = nullptr;
  std::unique_ptr<ModelRegistry> registry = GateRegistry(&gate);
  ServerOptions options = TinyServerOptions();
  options.max_batch = 4;
  options.max_wait = std::chrono::microseconds(200);
  ForecastServer server(options, registry.get());
  ASSERT_TRUE(server.Start().ok());

  std::vector<ForecastFuture> futures;
  for (int i = 0; i < 10; ++i) {
    ForecastRequest request;
    request.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
    auto submitted = server.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted.value()));
  }
  gate->WaitEntered(1);  // at least one batch is mid-flight

  std::thread shutdown_thread([&] { server.Shutdown(); });
  // New work is refused the moment shutdown begins...
  while (server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ForecastRequest late;
  late.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  EXPECT_EQ(server.Submit(std::move(late)).status().code(),
            core::StatusCode::kUnavailable);

  gate->Release();
  shutdown_thread.join();
  // ...but every request accepted before shutdown still gets its answer.
  for (ForecastFuture& future : futures) {
    ForecastResult result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(server.stats().TakeSnapshot().completed, 10);
}

// -- Checkpoint robustness (what hot-swap safety rests on) -------------------

class OneParamModule : public nn::Module {
 public:
  OneParamModule() {
    w_ = RegisterParameter("w", t::Tensor::Ones(t::Shape{3, 2}));
  }
  ag::Variable w_;
};

TEST(SerializationRobustnessTest, RejectsTruncatedCheckpoint) {
  std::string path = testing::TempDir() + "/trunc.sstb";
  OneParamModule module;
  ASSERT_TRUE(nn::SaveParameters(module, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 8u);
  // Chop mid-way through the parameter data.
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() - 5);

  OneParamModule reload;
  core::Status status = nn::LoadParameters(&reload, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), core::StatusCode::kIoError);
  // The module was left untouched by the failed load.
  EXPECT_FLOAT_EQ(reload.w_.value().data()[0], 1.0f);
  std::remove(path.c_str());
}

TEST(SerializationRobustnessTest, RejectsTrailingGarbage) {
  std::string path = testing::TempDir() + "/trailing.sstb";
  OneParamModule module;
  ASSERT_TRUE(nn::SaveParameters(module, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "XTRA";
  }
  OneParamModule reload;
  core::Status status = nn::LoadParameters(&reload, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), core::StatusCode::kIoError);
  EXPECT_NE(status.message().find("trailing"), std::string::npos);
  std::remove(path.c_str());
}

// -- Stats -------------------------------------------------------------------

TEST(ServerStatsTest, ReportsContainStagesAndThroughput) {
  ServerStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.RecordQueueWait(i * 1e-4);
    stats.RecordEndToEnd(i * 1e-3);
    stats.RecordAccepted();
    stats.RecordCompleted();
  }
  stats.RecordBatch(4);
  stats.RecordBatch(8);
  stats.UpdateQueueDepth(5);
  stats.UpdateQueueDepth(2);

  ServerStats::Snapshot snap = stats.TakeSnapshot();
  EXPECT_EQ(snap.completed, 100);
  EXPECT_EQ(snap.batches, 2);
  EXPECT_EQ(snap.queue_depth, 2);
  EXPECT_EQ(snap.peak_queue_depth, 5);
  EXPECT_GT(snap.requests_per_second, 0.0);
  // Quantiles are ordered and bracket the recorded range.
  EXPECT_LE(snap.end_to_end.p50, snap.end_to_end.p90);
  EXPECT_LE(snap.end_to_end.p90, snap.end_to_end.p99);
  EXPECT_LE(snap.end_to_end.p99, snap.end_to_end.max);
  EXPECT_NEAR(snap.end_to_end.p50, 0.050, 0.015);
  EXPECT_NEAR(snap.end_to_end.p99, 0.099, 0.02);

  std::string table = stats.ReportTable();
  EXPECT_NE(table.find("end_to_end"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
  EXPECT_NE(table.find("4x1"), std::string::npos);  // batch-size distribution

  std::string json = stats.ReportJson();
  EXPECT_NE(json.find("\"requests_per_second\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_sizes\""), std::string::npos);
}

}  // namespace
}  // namespace sstban::serving

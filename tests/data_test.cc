#include <cmath>
#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "data/corruption.h"
#include "data/csv_io.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "tensor/ops.h"

namespace sstban::data {
namespace {

std::shared_ptr<TrafficDataset> SmallWorld() {
  SyntheticWorldConfig config;
  config.num_nodes = 8;
  config.num_corridors = 2;
  config.steps_per_day = 24;
  config.num_days = 7;
  config.seed = 99;
  return std::make_shared<TrafficDataset>(GenerateSyntheticWorld(config));
}

TEST(SyntheticWorldTest, ShapesAndCalendar) {
  auto ds = SmallWorld();
  EXPECT_EQ(ds->num_steps(), 24 * 7);
  EXPECT_EQ(ds->num_nodes(), 8);
  EXPECT_EQ(ds->num_features(), 1);
  EXPECT_EQ(ds->time_of_day[0], 0);
  EXPECT_EQ(ds->time_of_day[25], 1);
  EXPECT_EQ(ds->day_of_week[0], 0);
  EXPECT_EQ(ds->day_of_week[24 * 6], 6);
}

TEST(SyntheticWorldTest, DeterministicInSeed) {
  auto a = SmallWorld();
  auto b = SmallWorld();
  EXPECT_TRUE(tensor::AllClose(a->signals, b->signals));
}

TEST(SyntheticWorldTest, FlowIsNonNegativeAndFinite) {
  auto ds = SmallWorld();
  EXPECT_GE(tensor::MinAll(ds->signals), 0.0f);
  EXPECT_FALSE(tensor::HasNonFinite(ds->signals));
}

TEST(SyntheticWorldTest, DailyPeriodicityIsStrong) {
  // Rush-hour flow should exceed night flow on weekdays by a clear margin
  // — this long-range structure is what SSTBAN's daily-pattern learning
  // (paper §V-D1) relies on.
  auto ds = SmallWorld();
  double rush = 0, night = 0;
  int rush_n = 0, night_n = 0;
  for (int64_t t = 0; t < ds->num_steps(); ++t) {
    if (ds->day_of_week[t] >= 5) continue;  // weekdays only
    double mean = 0;
    for (int64_t v = 0; v < ds->num_nodes(); ++v) {
      mean += ds->signals.at({t, v, 0});
    }
    mean /= static_cast<double>(ds->num_nodes());
    int64_t hour = ds->time_of_day[t];
    if (hour == 8 || hour == 17) {
      rush += mean;
      ++rush_n;
    } else if (hour <= 4) {
      night += mean;
      ++night_n;
    }
  }
  EXPECT_GT(rush / rush_n, 1.8 * night / night_n);
}

TEST(SyntheticWorldTest, SpeedWorldHasThreeCoupledFeatures) {
  SyntheticWorldConfig config = SeattleLikeConfig();
  config.num_nodes = 6;
  config.num_days = 3;
  TrafficDataset ds = GenerateSyntheticWorld(config);
  EXPECT_EQ(ds.num_features(), 3);
  // Occupancy in [0, 1]; speed positive and below free-flow bound.
  for (int64_t t = 0; t < ds.num_steps(); ++t) {
    for (int64_t v = 0; v < ds.num_nodes(); ++v) {
      EXPECT_GE(ds.signals.at({t, v, 2}), 0.0f);
      EXPECT_LE(ds.signals.at({t, v, 2}), 1.0f);
      EXPECT_GT(ds.signals.at({t, v, 1}), 0.0f);
      EXPECT_LT(ds.signals.at({t, v, 1}), 90.0f);
    }
  }
}

TEST(SyntheticWorldTest, SpeedDropsWhenOccupancyHigh) {
  // The Greenshields coupling: across observations, high occupancy must
  // coincide with low speed (negative correlation).
  SyntheticWorldConfig config = SeattleLikeConfig();
  config.num_nodes = 6;
  config.num_days = 7;
  TrafficDataset ds = GenerateSyntheticWorld(config);
  double sum_s = 0, sum_o = 0, sum_so = 0, sum_ss = 0, sum_oo = 0;
  int64_t n = 0;
  for (int64_t t = 0; t < ds.num_steps(); ++t) {
    for (int64_t v = 0; v < ds.num_nodes(); ++v) {
      double speed = ds.signals.at({t, v, 1});
      double occ = ds.signals.at({t, v, 2});
      sum_s += speed;
      sum_o += occ;
      sum_so += speed * occ;
      sum_ss += speed * speed;
      sum_oo += occ * occ;
      ++n;
    }
  }
  double cov = sum_so / n - (sum_s / n) * (sum_o / n);
  double corr = cov / (std::sqrt(sum_ss / n - (sum_s / n) * (sum_s / n)) *
                       std::sqrt(sum_oo / n - (sum_o / n) * (sum_o / n)));
  EXPECT_LT(corr, -0.8);
}

TEST(WindowDatasetTest, WindowCountAndBatchShapes) {
  auto ds = SmallWorld();
  WindowDataset windows(ds, 12, 6);
  EXPECT_EQ(windows.num_windows(), 24 * 7 - 12 - 6 + 1);
  Batch batch = windows.MakeBatch({0, 5});
  EXPECT_EQ(batch.x.shape(), tensor::Shape({2, 12, 8, 1}));
  EXPECT_EQ(batch.y.shape(), tensor::Shape({2, 6, 8, 1}));
  EXPECT_EQ(batch.tod_in.size(), 2u * 12u);
  EXPECT_EQ(batch.tod_out.size(), 2u * 6u);
}

TEST(WindowDatasetTest, TargetFollowsInputChronologically) {
  auto ds = SmallWorld();
  WindowDataset windows(ds, 4, 3);
  Batch batch = windows.MakeBatch({10});
  // x covers steps [10, 14), y covers [14, 17).
  EXPECT_FLOAT_EQ(batch.x.at({0, 0, 0, 0}), ds->signals.at({10, 0, 0}));
  EXPECT_FLOAT_EQ(batch.x.at({0, 3, 7, 0}), ds->signals.at({13, 7, 0}));
  EXPECT_FLOAT_EQ(batch.y.at({0, 0, 0, 0}), ds->signals.at({14, 0, 0}));
  EXPECT_EQ(batch.tod_in[0], ds->time_of_day[10]);
  EXPECT_EQ(batch.tod_out[2], ds->time_of_day[16]);
}

TEST(SplitTest, ChronologicalSplitProportions) {
  auto ds = SmallWorld();
  WindowDataset windows(ds, 6, 6);
  SplitIndices split = ChronologicalSplit(windows, 0.6, 0.2);
  int64_t total = windows.num_windows();
  EXPECT_NEAR(static_cast<double>(split.train.size()) / total, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(split.val.size()) / total, 0.2, 0.02);
  // Chronological: max(train) < min(val) < ... < max(test).
  EXPECT_LT(split.train.back(), split.val.front());
  EXPECT_LT(split.val.back(), split.test.front());
}

TEST(SplitTest, KeepLatestFraction) {
  std::vector<int64_t> train = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int64_t> kept = KeepLatestFraction(train, 0.3);
  EXPECT_EQ(kept, (std::vector<int64_t>{7, 8, 9}));
  EXPECT_EQ(KeepLatestFraction(train, 1.0).size(), 10u);
  // Never empty.
  EXPECT_EQ(KeepLatestFraction(train, 0.01).size(), 1u);
}

TEST(NormalizerTest, TransformHasZeroMeanUnitVariance) {
  auto ds = SmallWorld();
  Normalizer norm = Normalizer::Fit(ds->signals);
  tensor::Tensor z = norm.Transform(ds->signals);
  EXPECT_NEAR(tensor::MeanAll(z).item(), 0.0f, 1e-3f);
  float var = tensor::MeanAll(tensor::Square(z)).item();
  EXPECT_NEAR(var, 1.0f, 1e-2f);
}

TEST(NormalizerTest, RoundTripIsIdentity) {
  auto ds = SmallWorld();
  Normalizer norm = Normalizer::Fit(ds->signals);
  tensor::Tensor round = norm.InverseTransform(norm.Transform(ds->signals));
  EXPECT_TRUE(tensor::AllClose(round, ds->signals, 1e-2f, 1e-4f));
}

TEST(NormalizerTest, PerFeatureStatistics) {
  // Two features with very different scales must normalize independently.
  tensor::Tensor signals(tensor::Shape{100, 1, 2});
  core::Rng rng(5);
  for (int64_t t = 0; t < 100; ++t) {
    signals.at({t, 0, 0}) = rng.NextGaussian(1000.0f, 100.0f);
    signals.at({t, 0, 1}) = rng.NextGaussian(0.5f, 0.1f);
  }
  Normalizer norm = Normalizer::Fit(signals);
  EXPECT_NEAR(norm.mean(0), 1000.0f, 30.0f);
  EXPECT_NEAR(norm.mean(1), 0.5f, 0.05f);
  tensor::Tensor z = norm.Transform(signals);
  float var0 = 0, var1 = 0;
  for (int64_t t = 0; t < 100; ++t) {
    var0 += z.at({t, 0, 0}) * z.at({t, 0, 0});
    var1 += z.at({t, 0, 1}) * z.at({t, 0, 1});
  }
  EXPECT_NEAR(var0 / 100, 1.0f, 0.1f);
  EXPECT_NEAR(var1 / 100, 1.0f, 0.1f);
}

TEST(CorruptionTest, NoiseTouchesRequestedFractionAndRange) {
  auto ds = SmallWorld();
  int64_t t_begin = 20, t_end = 100;
  TrafficDataset noisy =
      AddGaussianNoise(*ds, 0.5, 100.0f, 1.0f, t_begin, t_end, 7);
  // Outside the range: untouched.
  EXPECT_TRUE(tensor::AllClose(tensor::Slice(noisy.signals, 0, 0, t_begin),
                               tensor::Slice(ds->signals, 0, 0, t_begin)));
  // Inside: roughly half the entries moved by ~100.
  int64_t changed = 0, total = 0;
  for (int64_t t = t_begin; t < t_end; ++t) {
    for (int64_t v = 0; v < ds->num_nodes(); ++v) {
      float delta = noisy.signals.at({t, v, 0}) - ds->signals.at({t, v, 0});
      if (std::fabs(delta) > 1e-6) {
        ++changed;
        EXPECT_NEAR(delta, 100.0f, 6.0f);
      }
      ++total;
    }
  }
  double fraction = static_cast<double>(changed) / total;
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(CorruptionTest, OriginalDatasetUnmodified) {
  auto ds = SmallWorld();
  tensor::Tensor before = ds->signals.Clone();
  AddGaussianNoise(*ds, 1.0, 10.0f, 500.0f, 0, ds->num_steps(), 3);
  EXPECT_TRUE(tensor::AllClose(ds->signals, before));
}

TEST(CsvIoTest, RoundTrip) {
  auto ds = SmallWorld();
  std::string path = ::testing::TempDir() + "/signals.csv";
  ASSERT_TRUE(SaveSignalsCsv(ds->signals, path).ok());
  auto loaded = LoadSignalsCsv(path, ds->num_nodes(), ds->num_features());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(tensor::AllClose(loaded.value(), ds->signals, 1e-2f, 1e-3f));
  std::remove(path.c_str());
}

TEST(CsvIoTest, LoadRejectsWrongColumnCount) {
  std::string path = ::testing::TempDir() + "/bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a,b\n1,2\n3\n", f);
  fclose(f);
  EXPECT_FALSE(LoadSignalsCsv(path, 1, 2).ok());
  std::remove(path.c_str());
}

TEST(CsvIoTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadSignalsCsv("/nonexistent/file.csv", 2, 1).ok());
}

}  // namespace
}  // namespace sstban::data

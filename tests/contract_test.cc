// Contract (failure-injection) tests: programming errors must trip a CHECK
// and abort with a diagnostic rather than silently corrupting state. Uses
// gtest death tests, so each case runs in a forked child.

#include <memory>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "data/synthetic_world.h"
#include "sstban/config.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace sstban {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, ShapeDimOutOfRange) {
  t::Shape s{2, 3};
  EXPECT_DEATH(s.dim(2), "CHECK failed");
  EXPECT_DEATH(s.dim(-3), "CHECK failed");
}

TEST(ContractDeathTest, BroadcastIncompatibleShapes) {
  EXPECT_DEATH(t::BroadcastShapes(t::Shape{2, 3}, t::Shape{2, 4}),
               "cannot broadcast");
}

TEST(ContractDeathTest, TensorIndexOutOfBounds) {
  t::Tensor x = t::Tensor::Zeros(t::Shape{2, 2});
  EXPECT_DEATH(x.at({2, 0}), "out of bounds");
  EXPECT_DEATH(x.at({0}), "CHECK failed");  // wrong rank
}

TEST(ContractDeathTest, ReshapeElementCountMismatch) {
  t::Tensor x = t::Tensor::Zeros(t::Shape{2, 3});
  EXPECT_DEATH(x.Reshape(t::Shape{7}), "cannot reshape");
}

TEST(ContractDeathTest, MatmulInnerDimMismatch) {
  t::Tensor a = t::Tensor::Zeros(t::Shape{2, 3});
  t::Tensor b = t::Tensor::Zeros(t::Shape{4, 2});
  EXPECT_DEATH(t::Matmul(a, b), "matmul inner dims");
}

TEST(ContractDeathTest, BmmBatchMismatch) {
  t::Tensor a = t::Tensor::Zeros(t::Shape{2, 3, 4});
  t::Tensor b = t::Tensor::Zeros(t::Shape{3, 4, 5});
  EXPECT_DEATH(t::Bmm(a, b), "CHECK failed");
}

TEST(ContractDeathTest, SliceOutOfRange) {
  t::Tensor x = t::Tensor::Zeros(t::Shape{4});
  EXPECT_DEATH(t::Slice(x, 0, 2, 5), "out of range");
}

TEST(ContractDeathTest, ConcatRankMismatch) {
  t::Tensor a = t::Tensor::Zeros(t::Shape{2, 2});
  t::Tensor b = t::Tensor::Zeros(t::Shape{2, 3});
  EXPECT_DEATH(t::Concat({a, b}, 0), "CHECK failed");
}

TEST(ContractDeathTest, BackwardRequiresScalar) {
  ag::Variable x(t::Tensor::Zeros(t::Shape{3}), true);
  ag::Variable y = ag::Square(x);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(ContractDeathTest, GradAccessWithoutBackward) {
  ag::Variable x(t::Tensor::Zeros(t::Shape{3}), true);
  EXPECT_DEATH(x.grad(), "no gradient");
}

TEST(ContractDeathTest, EmbeddingIndexOutOfRange) {
  ag::Variable weight(t::Tensor::Zeros(t::Shape{3, 2}), true);
  EXPECT_DEATH(ag::EmbeddingLookup(weight, {5}), "out of range");
}

TEST(ContractDeathTest, Conv1dInputTooShortForDilation) {
  ag::Variable x(t::Tensor::Zeros(t::Shape{1, 3, 1}));
  ag::Variable w(t::Tensor::Zeros(t::Shape{2, 1, 1}));
  EXPECT_DEATH(ag::Conv1dTime(x, w, ag::Variable(), /*dilation=*/4),
               "input too short");
}

TEST(ContractDeathTest, WindowDatasetTooShort) {
  data::SyntheticWorldConfig config;
  config.num_nodes = 2;
  config.num_corridors = 1;
  config.steps_per_day = 4;
  config.num_days = 1;
  auto ds = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
  EXPECT_DEATH(data::WindowDataset(ds, 8, 8), "dataset too short");
}

TEST(ContractDeathTest, UnknownTableIiiScenario) {
  EXPECT_DEATH(sstban::TableIiiConfig("metro-99"), "unknown Table III scenario");
}

}  // namespace
}  // namespace sstban

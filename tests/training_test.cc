#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "baselines/historical_average.h"
#include "core/rng.h"
#include "data/synthetic_world.h"
#include "nn/linear.h"
#include "training/metrics.h"
#include "training/trainer.h"

namespace sstban::training {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

TEST(MetricsTest, KnownValues) {
  MetricsAccumulator acc;
  t::Tensor pred = t::Tensor::FromVector(t::Shape{4}, {1, 2, 3, 4});
  t::Tensor truth = t::Tensor::FromVector(t::Shape{4}, {2, 2, 1, 8});
  acc.Add(pred, truth);
  Metrics m = acc.Compute();
  EXPECT_FLOAT_EQ(m.mae, (1 + 0 + 2 + 4) / 4.0);
  EXPECT_FLOAT_EQ(m.rmse, std::sqrt((1 + 0 + 4 + 16) / 4.0));
  EXPECT_NEAR(m.mape, 100.0 * (0.5 + 0.0 + 2.0 + 0.5) / 4.0, 1e-3);
}

TEST(MetricsTest, MapeSkipsNearZeroTruth) {
  MetricsAccumulator acc(/*mape_threshold=*/0.5);
  t::Tensor pred = t::Tensor::FromVector(t::Shape{2}, {1, 5});
  t::Tensor truth = t::Tensor::FromVector(t::Shape{2}, {0.01f, 4});
  acc.Add(pred, truth);
  Metrics m = acc.Compute();
  EXPECT_NEAR(m.mape, 100.0 * 0.25, 1e-3);  // only the second element counts
}

TEST(MetricsTest, AccumulatesAcrossBatches) {
  MetricsAccumulator acc;
  acc.Add(t::Tensor::FromVector(t::Shape{1}, {1}),
          t::Tensor::FromVector(t::Shape{1}, {2}));
  acc.Add(t::Tensor::FromVector(t::Shape{1}, {5}),
          t::Tensor::FromVector(t::Shape{1}, {2}));
  Metrics m = acc.Compute();
  EXPECT_FLOAT_EQ(m.mae, 2.0);
  EXPECT_EQ(acc.count(), 2);
}

TEST(MetricsTest, ToStringFormat) {
  MetricsAccumulator acc;
  acc.Add(t::Tensor::FromVector(t::Shape{1}, {1}),
          t::Tensor::FromVector(t::Shape{1}, {2}));
  EXPECT_NE(acc.Compute().ToString().find("MAE"), std::string::npos);
}

// A trivially learnable model: predicts a learned constant per output cell.
class ConstantModel : public TrafficModel {
 public:
  ConstantModel(int64_t q, int64_t n, int64_t c) {
    bias_ = RegisterParameter("bias", t::Tensor::Zeros(t::Shape{q, n, c}));
  }
  ag::Variable Predict(const t::Tensor& x_norm, const data::Batch& batch) override {
    (void)batch;
    int64_t b = x_norm.dim(0);
    ag::Variable zeros(t::Tensor::Zeros(
        t::Shape{b, bias_.dim(0), bias_.dim(1), bias_.dim(2)}));
    return ag::Add(zeros, ag::Reshape(bias_, t::Shape{1, bias_.dim(0),
                                                      bias_.dim(1), bias_.dim(2)}));
  }
  std::string name() const override { return "Constant"; }

 private:
  ag::Variable bias_;
};

std::shared_ptr<data::TrafficDataset> TinyWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = 4;
  config.num_corridors = 2;
  config.steps_per_day = 24;
  config.num_days = 6;
  config.seed = 12;
  return std::make_shared<data::TrafficDataset>(GenerateSyntheticWorld(config));
}

TEST(TrainerTest, TrainsConstantModelTowardDataMean) {
  auto ds = TinyWorld();
  data::WindowDataset windows(ds, 6, 4);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  ConstantModel model(4, 4, 1);
  TrainerConfig config;
  config.max_epochs = 12;
  config.batch_size = 16;
  config.learning_rate = 0.1f;
  Trainer trainer(config);
  TrainStats stats = trainer.Train(&model, windows, split, norm);
  EXPECT_GT(stats.epochs_run, 0);
  EXPECT_GT(stats.total_train_seconds, 0.0);
  EXPECT_FALSE(stats.epoch_train_loss.empty());
  // Loss decreased over training.
  EXPECT_LT(stats.epoch_train_loss.back(), stats.epoch_train_loss.front());
}

TEST(TrainerTest, EarlyStoppingBoundsEpochs) {
  auto ds = TinyWorld();
  data::WindowDataset windows(ds, 6, 4);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  ConstantModel model(4, 4, 1);
  TrainerConfig config;
  config.max_epochs = 100;
  config.patience = 2;
  config.batch_size = 32;
  config.learning_rate = 0.5f;  // fast convergence -> early stop triggers
  Trainer trainer(config);
  TrainStats stats = trainer.Train(&model, windows, split, norm);
  EXPECT_LT(stats.epochs_run, 100);
}

TEST(TrainerTest, NonTrainableModelUsesFitPath) {
  auto ds = TinyWorld();
  data::WindowDataset windows(ds, 6, 4);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  baselines::HistoricalAverage ha;
  Trainer trainer(TrainerConfig{});
  TrainStats stats = trainer.Train(&ha, windows, split, norm);
  EXPECT_EQ(stats.epochs_run, 1);
  EXPECT_GT(stats.best_val_mae, 0.0);
}

TEST(EvaluateTest, PerHorizonMetricsHaveExpectedLength) {
  auto ds = TinyWorld();
  data::WindowDataset windows(ds, 6, 4);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  baselines::HistoricalAverage ha;
  EvalResult result =
      Evaluate(&ha, windows, split.test, norm, 8, /*per_horizon=*/true);
  EXPECT_EQ(result.per_horizon.size(), 4u);
  EXPECT_GT(result.overall.mae, 0.0);
  // Long-horizon error should not be below the 1-step error for a
  // persistence-style predictor on a mean-reverting daily cycle.
  EXPECT_GE(result.per_horizon.back().mae, 0.5 * result.per_horizon.front().mae);
}

TEST(EvaluateTest, MetricsAreDenormalized) {
  auto ds = TinyWorld();
  data::WindowDataset windows(ds, 6, 4);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer norm = data::Normalizer::Fit(ds->signals);
  baselines::HistoricalAverage ha;
  EvalResult result = Evaluate(&ha, windows, split.test, norm, 8);
  // The raw flow scale is in the hundreds; normalized errors would be ~1.
  EXPECT_GT(result.overall.mae, 5.0);
}

}  // namespace
}  // namespace sstban::training

// Golden-output regression tests: a committed forecast (tests/testdata/
// executor_golden.txt, one IEEE-754 bit pattern per line) is replayed
// through BOTH forwards — the autograd tape and the compiled static
// executor — on a fully deterministic model + input. Catches silent numeric
// drift in either path between commits.
//
// Cross-toolchain caution: the goldens were produced by one compiler at one
// -march, so other toolchains may round differently. By default the replay
// asserts AllClose against the golden (tight tolerance) plus tape==executor
// bitwise (which holds everywhere); set SSTBAN_GOLDEN_BITWISE=1 on the
// recording toolchain (our CI) to require the committed bits exactly.
// Set SSTBAN_UPDATE_GOLDEN=1 to re-record after an intentional change.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/dataset.h"
#include "exec/engine.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/forecast_service.h"

namespace sstban {
namespace {

namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

#ifndef SSTBAN_TESTDATA_DIR
#error "SSTBAN_TESTDATA_DIR must be defined by the build"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(SSTBAN_TESTDATA_DIR) + "/" + name;
}

std::vector<uint32_t> ReadGolden(const std::string& path) {
  std::ifstream in(path);
  std::vector<uint32_t> bits;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    bits.push_back(
        static_cast<uint32_t>(std::strtoul(line.c_str(), nullptr, 16)));
  }
  return bits;
}

void WriteGolden(const std::string& path, const t::Tensor& forecast,
                 const std::string& header) {
  std::ofstream out(path);
  out << "# " << header << "\n";
  const float* data = forecast.data();
  char buf[16];
  for (int64_t i = 0; i < forecast.size(); ++i) {
    uint32_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    std::snprintf(buf, sizeof(buf), "%08x\n", bits);
    out << buf;
  }
}

t::Tensor FromBits(const std::vector<uint32_t>& bits, const t::Shape& shape) {
  t::Tensor out = t::Tensor::Zeros(shape);
  for (size_t i = 0; i < bits.size(); ++i) {
    std::memcpy(out.data() + i, &bits[i], sizeof(float));
  }
  return out;
}

// The recorded scenario: fixed seeds everywhere, both config toggles on,
// masked and unmasked variants.
struct GoldenScenario {
  std::string file;
  bool masked;
};

constexpr int64_t kB = 2, kP = 6, kN = 4, kStepsPerDay = 8;

model_ns::SstbanConfig GoldenConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = kN;
  config.input_len = kP;
  config.output_len = kP;
  config.num_features = 1;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.temporal_refs = 2;
  config.spatial_refs = 2;
  config.patch_len = 2;
  config.self_supervised = false;
  config.seed = 77;
  return config;
}

void RunGoldenScenario(const GoldenScenario& scenario) {
  SCOPED_TRACE(scenario.file);
  model_ns::SstbanModel model(GoldenConfig());
  model.SetTraining(false);

  core::Rng rng(123);
  data::Batch batch;
  batch.x = t::Tensor::RandomUniform(t::Shape{kB, kP, kN, 1}, rng, -1.0f, 1.0f);
  batch.y = t::Tensor::Zeros(t::Shape{kB, kP, kN, 1});
  for (int64_t i = 0; i < kB; ++i) {
    training::AppendCalendarFeatures(/*first_step=*/2 + 9 * i, kP, kP,
                                     kStepsPerDay, &batch);
  }
  t::Tensor keep = t::Tensor::Ones(t::Shape{kB, kP, kN});
  for (int64_t i = 0; i < keep.size(); i += 5) keep.data()[i] = 0.0f;
  keep.data()[0] = 1.0f;

  t::Tensor tape;
  {
    autograd::NoGradGuard no_grad;
    tape = scenario.masked ? model.PredictMasked(batch.x, keep, batch).value()
                           : model.Predict(batch.x, batch).value();
  }
  exec::InferenceEngine* engine = model.inference_engine();
  ASSERT_NE(engine, nullptr);
  t::Tensor compiled;
  core::Status status =
      scenario.masked ? engine->RunMasked(batch.x, keep, batch, &compiled)
                      : engine->Run(batch.x, batch, &compiled);
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Tape == executor bitwise is toolchain-independent and always enforced.
  ASSERT_TRUE(compiled.shape() == tape.shape());
  EXPECT_EQ(std::memcmp(compiled.data(), tape.data(),
                        static_cast<size_t>(tape.size()) * sizeof(float)),
            0);

  const std::string path = GoldenPath(scenario.file);
  if (std::getenv("SSTBAN_UPDATE_GOLDEN") != nullptr) {
    WriteGolden(path, tape,
                scenario.file + " seed=77/123 [B,P,N]=[2,6,4] tape forward");
    SUCCEED() << "golden rewritten: " << path;
    return;
  }

  std::vector<uint32_t> bits = ReadGolden(path);
  ASSERT_EQ(static_cast<int64_t>(bits.size()), tape.size())
      << "golden " << path
      << " missing or stale; rerun with SSTBAN_UPDATE_GOLDEN=1";
  t::Tensor golden = FromBits(bits, tape.shape());
  EXPECT_TRUE(t::AllClose(tape, golden, /*atol=*/1e-5f, /*rtol=*/1e-4f));
  if (std::getenv("SSTBAN_GOLDEN_BITWISE") != nullptr) {
    EXPECT_EQ(std::memcmp(tape.data(), golden.data(),
                          static_cast<size_t>(tape.size()) * sizeof(float)),
              0)
        << "bitwise golden mismatch in " << path;
  }
}

TEST(ExecutorGoldenTest, CleanForecastMatchesCommittedGolden) {
  RunGoldenScenario({"executor_golden.txt", /*masked=*/false});
}

TEST(ExecutorGoldenTest, MaskedForecastMatchesCommittedGolden) {
  RunGoldenScenario({"executor_golden_masked.txt", /*masked=*/true});
}

}  // namespace
}  // namespace sstban

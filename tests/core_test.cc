#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/histogram.h"
#include "core/memory_tracker.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/string_util.h"
#include "core/thread_pool.h"

namespace sstban::core {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, ServingErrorFactories) {
  EXPECT_EQ(Status::Unavailable("full").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint32(), b.NextUint32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, UniformMomentsRoughlyCorrect) {
  Rng rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(13);
  std::vector<int64_t> sampled = rng.SampleWithoutReplacement(50, 20);
  std::set<int64_t> unique(sampled.begin(), sampled.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int64_t v : sampled) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(13);
  std::vector<int64_t> sampled = rng.SampleWithoutReplacement(5, 5);
  std::set<int64_t> unique(sampled.begin(), sampled.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int64_t> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int64_t> original = values;
  rng.Shuffle(values);
  std::multiset<int64_t> a(values.begin(), values.end());
  std::multiset<int64_t> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The fork should not replay the parent's sequence.
  Rng parent_again(21);
  parent_again.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.NextUint32() == parent.NextUint32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  }, /*min_chunk=*/8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ScheduleAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 32);
}

// The serving batcher runs on its own thread while tensor kernels fan work
// out to the pool via ParallelFor, so Schedule/Wait must stay correct under
// many concurrent producers issuing repeated rounds.
TEST(ThreadPoolTest, StressManyScheduleWaitRoundsFromMultipleProducers) {
  ThreadPool pool(4);
  std::atomic<int64_t> counter{0};
  constexpr int kProducers = 4;
  constexpr int kRounds = 50;
  constexpr int kTasksPerRound = 8;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (int task = 0; task < kTasksPerRound; ++task) {
          pool.Schedule([&counter] { counter.fetch_add(1); });
        }
        pool.Wait();
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kProducers * kRounds * kTasksPerRound);
}

// Regression: tasks scheduled *from inside* running tasks used to be
// invisible to a concurrent Wait(), which could return while the chain was
// still growing. Wait() must observe the whole chain because each link is
// enqueued before its parent finishes (and thus before pending can drain).
TEST(ThreadPoolTest, WaitSeesTasksScheduledFromTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  constexpr int kDepth = 64;
  std::function<void(int)> chain = [&](int remaining) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    counter.fetch_add(1);
    if (remaining > 0) pool.Schedule([&chain, remaining] { chain(remaining - 1); });
  };
  pool.Schedule([&chain] { chain(kDepth - 1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), kDepth);
}

// Regression: Wait() called from inside a pool task used to deadlock — the
// caller's own in-flight task kept `pending` above zero forever. Now the
// caller helps drain the queue and excludes its own stack from the wait.
TEST(ThreadPoolTest, WaitFromInsideTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> subtasks_done{0};
  std::atomic<bool> inner_wait_returned{false};
  pool.Schedule([&] {
    for (int i = 0; i < 8; ++i) {
      pool.Schedule([&subtasks_done] { subtasks_done.fetch_add(1); });
    }
    pool.Wait();  // must not wait on the task this lambda runs inside
    EXPECT_EQ(subtasks_done.load(), 8);
    inner_wait_returned.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(inner_wait_returned.load());
  EXPECT_EQ(subtasks_done.load(), 8);
}

// RunAndWait from inside RunAndWait tasks: every level must complete, with
// blocked callers executing queued work instead of idling (otherwise a pool
// whose threads are all blocked in nested waits would deadlock).
TEST(ThreadPoolTest, NestedRunAndWaitCompletesAllLevels) {
  ThreadPool pool(2);
  constexpr int kOuter = 6, kInner = 5;
  std::atomic<int> inner_done{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < kOuter; ++i) {
    outer.push_back([&pool, &inner_done] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < kInner; ++j) {
        inner.push_back([&inner_done] {
          std::this_thread::sleep_for(std::chrono::microseconds(20));
          inner_done.fetch_add(1);
        });
      }
      pool.RunAndWait(std::move(inner));
    });
  }
  pool.RunAndWait(std::move(outer));
  EXPECT_EQ(inner_done.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, RunAndWaitPropagatesTaskExceptions) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([i, &completed] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.RunAndWait(std::move(tasks)), std::runtime_error);
  // All non-throwing tasks still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 5);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyExceptions) {
  EXPECT_THROW(
      ParallelFor(0, 1000, [](int64_t lo, int64_t) {
        if (lo == 0) throw std::runtime_error("body failed");
      }, /*min_chunk=*/8),
      std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForCoversAllRanges) {
  constexpr int64_t kOuter = 8, kInner = 500;
  std::vector<std::atomic<int64_t>> sums(kOuter);
  ParallelFor(0, kOuter, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      ParallelFor(0, kInner, [&, i](int64_t jlo, int64_t jhi) {
        int64_t local = 0;
        for (int64_t j = jlo; j < jhi; ++j) local += j;
        sums[i].fetch_add(local);
      }, /*min_chunk=*/16);
    }
  }, /*min_chunk=*/1);
  for (int64_t i = 0; i < kOuter; ++i) {
    EXPECT_EQ(sums[i].load(), kInner * (kInner - 1) / 2) << "outer " << i;
  }
}

TEST(ThreadPoolTest, ParallelismCapForcesInlineExecution) {
  SetParallelismCapForTesting(1);
  std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  ParallelFor(0, 100000, [&](int64_t, int64_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  }, /*min_chunk=*/16);
  SetParallelismCapForTesting(0);
  EXPECT_TRUE(all_inline);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  h.Record(0.010);
  h.Record(0.020);
  h.Record(0.030);
  EXPECT_EQ(h.count(), 3);
  EXPECT_NEAR(h.sum(), 0.060, 1e-9);
  EXPECT_NEAR(h.mean(), 0.020, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 0.010);
  EXPECT_DOUBLE_EQ(h.max(), 0.030);
}

TEST(HistogramTest, QuantilesOrderedAndBracketed) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1e-3);  // 1ms .. 1s
  double p50 = h.Quantile(0.50);
  double p90 = h.Quantile(0.90);
  double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Log-bucketed, so quantiles are approximate: within ~15% of the truth.
  EXPECT_NEAR(p50, 0.500, 0.075);
  EXPECT_NEAR(p90, 0.900, 0.135);
  EXPECT_NEAR(p99, 0.990, 0.150);
}

TEST(HistogramTest, EmptyAndReset) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
  h.Record(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, TinyAndHugeValuesClampToEdgeBuckets) {
  Histogram h;
  h.Record(1e-12);  // below the lowest bucket
  h.Record(1e9);    // beyond the highest bucket
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1e-12);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1e9);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("1,2,,3", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim("\t\r\n "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, JsonEscapePassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("half-open"), "half-open");
  EXPECT_EQ(JsonEscape("p99 = 1.5ms"), "p99 = 1.5ms");
}

TEST(StringUtilTest, JsonEscapeEscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("C:\\path\\file"), "C:\\\\path\\\\file");
  EXPECT_EQ(JsonEscape("\\\""), "\\\\\\\"");
}

TEST(StringUtilTest, JsonEscapeEscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("\r\b\f"), "\\r\\b\\f");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("x\x1f", 2)), "x\\u001f");
}

TEST(StringUtilTest, JsonQuoteWrapsEscapedBody) {
  EXPECT_EQ(JsonQuote("ok"), "\"ok\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote(""), "\"\"");
}

TEST(MemoryTrackerTest, TracksLiveAndPeak) {
  MemoryTracker& tracker = MemoryTracker::Global();
  tracker.ResetPeak();
  int64_t base = tracker.live_bytes();
  tracker.OnAlloc(1000);
  EXPECT_EQ(tracker.live_bytes(), base + 1000);
  EXPECT_GE(tracker.peak_bytes(), base + 1000);
  tracker.OnFree(1000);
  EXPECT_EQ(tracker.live_bytes(), base);
  EXPECT_GE(tracker.peak_bytes(), base + 1000);
}

}  // namespace
}  // namespace sstban::core

// Crash-safe checkpointing and bitwise-resumable training.
//
// Covers: the atomic write protocol (no fault schedule can leave a torn
// file at the destination path), the CRC32-checksummed parameter and
// TrainState formats (v1 legacy files stay readable), newest-valid resume
// with corrupt checkpoints skipped, early-stopping state pinning, and the
// in-process half of the bitwise resume contract. The kill-at-a-failpoint
// half lives in checkpoint_crash_test.cc (it needs subprocesses).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/crc32.h"
#include "core/failpoint.h"
#include "core/file_io.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "nn/mlp.h"
#include "nn/serialization.h"
#include "optim/optimizer.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/checkpoint.h"
#include "training/trainer.h"

namespace sstban {
namespace {

namespace fs = std::filesystem;
namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void FlipMiddleByte(const std::string& path) {
  std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= 0x5A;
  WriteAll(path, bytes);
}

// A unique per-test scratch directory (gtest's TempDir is shared).
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

bool HasTempFiles(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      return true;
    }
  }
  return false;
}

class FailPointGuard {
 public:
  ~FailPointGuard() { core::FailPoint::ClearAll(); }
};

// -- Atomic writes -----------------------------------------------------------

TEST(AtomicWriteTest, ReplacesContentAndLeavesNoTemp) {
  std::string dir = FreshDir("atomic_basic");
  std::string path = dir + "/file.bin";
  ASSERT_TRUE(core::WriteFileAtomic(path, "old-content").ok());
  ASSERT_TRUE(core::WriteFileAtomic(path, "new-content").ok());
  EXPECT_EQ(ReadAll(path), "new-content");
  EXPECT_FALSE(HasTempFiles(dir));
}

TEST(AtomicWriteTest, EveryWriteFailpointLeavesOldContentIntact) {
  FailPointGuard guard;
  for (const char* fp : {"ckpt_write_open", "ckpt_write_mid",
                         "ckpt_write_fsync", "ckpt_rename"}) {
    std::string dir = FreshDir(std::string("atomic_") + fp);
    std::string path = dir + "/file.bin";
    ASSERT_TRUE(core::WriteFileAtomic(path, "old-content").ok());
    ASSERT_TRUE(core::FailPoint::Set(fp, "error(kIoError)@1").ok());
    core::Status status = core::WriteFileAtomic(path, "REPLACEMENT");
    core::FailPoint::ClearAll();
    EXPECT_EQ(status.code(), core::StatusCode::kIoError) << fp;
    EXPECT_EQ(ReadAll(path), "old-content") << fp;
    EXPECT_FALSE(HasTempFiles(dir)) << fp;
    // The failpoint was single-shot: the next write goes through.
    ASSERT_TRUE(core::WriteFileAtomic(path, "after").ok());
    EXPECT_EQ(ReadAll(path), "after") << fp;
  }
}

TEST(AtomicWriteTest, FaultBeforeRenameLeavesNoFileAtFreshPath) {
  FailPointGuard guard;
  std::string dir = FreshDir("atomic_fresh");
  std::string path = dir + "/never_created.bin";
  ASSERT_TRUE(core::FailPoint::Set("ckpt_rename", "error(kIoError)@1").ok());
  EXPECT_FALSE(core::WriteFileAtomic(path, "data").ok());
  core::FailPoint::ClearAll();
  EXPECT_FALSE(fs::exists(path));
}

// -- Parameter checkpoint format (v2 + legacy v1) ----------------------------

TEST(SerializationV2Test, CorruptByteIsRejectedByChecksum) {
  std::string dir = FreshDir("ser_crc");
  std::string path = dir + "/model.bin";
  core::Rng rng(1);
  nn::Mlp model({4, 8, 2}, rng);
  ASSERT_TRUE(nn::SaveParameters(model, path).ok());
  // Flip a byte inside the last tensor's float payload (just ahead of the
  // 4-byte footer): the body still parses, so only the CRC can catch it.
  std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() - 6] ^= 0x5A;
  WriteAll(path, bytes);
  core::Rng rng2(2);
  nn::Mlp reload({4, 8, 2}, rng2);
  core::Status status = nn::LoadParameters(&reload, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), core::StatusCode::kIoError);
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
}

TEST(SerializationV2Test, LegacyV1FileWithoutFooterStillLoads) {
  std::string dir = FreshDir("ser_v1");
  std::string path = dir + "/legacy.bin";
  core::Rng rng(3);
  nn::Mlp model({3, 5, 1}, rng);
  // Manufacture the pre-CRC on-disk layout: same body, version 1, no footer.
  core::BufferWriter w;
  w.Bytes("SSTB", 4);
  w.Pod(static_cast<uint32_t>(1));
  auto named = model.NamedParameters();
  w.Pod(static_cast<uint64_t>(named.size()));
  for (const auto& [name, param] : named) {
    w.Pod(static_cast<uint64_t>(name.size()));
    w.Bytes(name.data(), name.size());
    nn::AppendTensor(w, param.value());
  }
  WriteAll(path, w.str());

  core::Rng rng2(4);
  nn::Mlp reload({3, 5, 1}, rng2);
  ASSERT_TRUE(nn::LoadParameters(&reload, path).ok());
  auto a = model.NamedParameters();
  auto b = reload.NamedParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(a[i].second.value().data(),
                          b[i].second.value().data(),
                          sizeof(float) *
                              static_cast<size_t>(a[i].second.value().size())),
              0);
  }
}

TEST(SerializationV2Test, SaveIsAtomicUnderInjectedFault) {
  FailPointGuard guard;
  std::string dir = FreshDir("ser_atomic");
  std::string path = dir + "/model.bin";
  core::Rng rng(5);
  nn::Mlp original({4, 4}, rng);
  ASSERT_TRUE(nn::SaveParameters(original, path).ok());

  core::Rng rng2(6);
  nn::Mlp changed({4, 4}, rng2);
  ASSERT_TRUE(core::FailPoint::Set("ckpt_write_mid", "error(kIoError)@1").ok());
  EXPECT_FALSE(nn::SaveParameters(changed, path).ok());
  core::FailPoint::ClearAll();

  // The destination still holds the *original*, fully valid checkpoint.
  core::Rng rng3(7);
  nn::Mlp reload({4, 4}, rng3);
  ASSERT_TRUE(nn::LoadParameters(&reload, path).ok());
  auto a = original.NamedParameters();
  auto b = reload.NamedParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(a[i].second.value().data(),
                          b[i].second.value().data(),
                          sizeof(float) *
                              static_cast<size_t>(a[i].second.value().size())),
              0);
  }
}

// -- TrainCheckpoint format --------------------------------------------------

training::TrainCheckpoint MakeState() {
  training::TrainCheckpoint state;
  state.next_epoch = 7;
  state.global_step = 91;
  state.shuffle_rng = {0x1234567890abcdefULL, 0x2468ace13579bdf1ULL, true,
                       0.25f};
  state.has_model_rng = true;
  state.model_rng = {42, 99, false, 0.0f};
  state.best_val = 3.14159;
  state.early_best = 2.5f;
  state.early_stale = 3;
  state.epoch_train_loss = {1.5, 1.25, 1.125};
  state.order = {4, 2, 0, 1, 3};
  state.params.emplace_back("layer.w",
                            t::Tensor::FromVector(t::Shape{2, 2}, {1, 2, 3, 4}));
  state.params.emplace_back("layer.b",
                            t::Tensor::FromVector(t::Shape{2}, {5, 6}));
  state.adam_step = 91;
  state.adam_m = {t::Tensor::Full(t::Shape{2, 2}, 0.1f),
                  t::Tensor::Full(t::Shape{2}, 0.2f)};
  state.adam_v = {t::Tensor::Full(t::Shape{2, 2}, 0.3f),
                  t::Tensor::Full(t::Shape{2}, 0.4f)};
  state.best_params = {t::Tensor::Full(t::Shape{2, 2}, 7.0f),
                       t::Tensor::Full(t::Shape{2}, 8.0f)};
  return state;
}

void ExpectTensorEq(const t::Tensor& a, const t::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.size())),
            0);
}

TEST(TrainCheckpointTest, RoundTripRestoresEveryField) {
  std::string dir = FreshDir("ts_roundtrip");
  std::string path = dir + "/" + training::TrainCheckpointFileName(7);
  training::TrainCheckpoint state = MakeState();
  ASSERT_TRUE(training::SaveTrainCheckpoint(path, state).ok());

  training::TrainCheckpoint loaded;
  ASSERT_TRUE(training::LoadTrainCheckpoint(path, &loaded).ok());
  EXPECT_EQ(loaded.next_epoch, state.next_epoch);
  EXPECT_EQ(loaded.global_step, state.global_step);
  EXPECT_EQ(loaded.shuffle_rng.state, state.shuffle_rng.state);
  EXPECT_EQ(loaded.shuffle_rng.inc, state.shuffle_rng.inc);
  EXPECT_EQ(loaded.shuffle_rng.has_spare, state.shuffle_rng.has_spare);
  EXPECT_EQ(loaded.shuffle_rng.spare, state.shuffle_rng.spare);
  EXPECT_EQ(loaded.has_model_rng, state.has_model_rng);
  EXPECT_EQ(loaded.model_rng.state, state.model_rng.state);
  EXPECT_EQ(loaded.best_val, state.best_val);
  EXPECT_EQ(loaded.early_best, state.early_best);
  EXPECT_EQ(loaded.early_stale, state.early_stale);
  EXPECT_EQ(loaded.epoch_train_loss, state.epoch_train_loss);
  EXPECT_EQ(loaded.order, state.order);
  ASSERT_EQ(loaded.params.size(), state.params.size());
  for (size_t i = 0; i < state.params.size(); ++i) {
    EXPECT_EQ(loaded.params[i].first, state.params[i].first);
    ExpectTensorEq(loaded.params[i].second, state.params[i].second);
    ExpectTensorEq(loaded.adam_m[i], state.adam_m[i]);
    ExpectTensorEq(loaded.adam_v[i], state.adam_v[i]);
    ExpectTensorEq(loaded.best_params[i], state.best_params[i]);
  }
  EXPECT_EQ(loaded.adam_step, state.adam_step);
}

TEST(TrainCheckpointTest, CorruptionAndTruncationAreRejected) {
  std::string dir = FreshDir("ts_corrupt");
  std::string path = dir + "/" + training::TrainCheckpointFileName(1);
  ASSERT_TRUE(training::SaveTrainCheckpoint(path, MakeState()).ok());
  std::string pristine = ReadAll(path);

  FlipMiddleByte(path);
  training::TrainCheckpoint loaded;
  EXPECT_EQ(training::LoadTrainCheckpoint(path, &loaded).code(),
            core::StatusCode::kIoError);

  WriteAll(path, pristine.substr(0, pristine.size() / 2));
  EXPECT_EQ(training::LoadTrainCheckpoint(path, &loaded).code(),
            core::StatusCode::kIoError);

  WriteAll(path, pristine + "garbage");
  EXPECT_EQ(training::LoadTrainCheckpoint(path, &loaded).code(),
            core::StatusCode::kIoError);
}

TEST(TrainCheckpointTest, ListIsNewestFirstAndIgnoresTempFiles) {
  std::string dir = FreshDir("ts_list");
  for (int epoch : {3, 1, 12}) {
    ASSERT_TRUE(
        training::SaveTrainCheckpoint(
            dir + "/" + training::TrainCheckpointFileName(epoch), MakeState())
            .ok());
  }
  WriteAll(dir + "/" + training::TrainCheckpointFileName(9) + ".tmp.123",
           "partial");
  WriteAll(dir + "/unrelated.txt", "hello");
  std::vector<std::string> found = training::ListTrainCheckpoints(dir);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_NE(found[0].find("000012"), std::string::npos);
  EXPECT_NE(found[1].find("000003"), std::string::npos);
  EXPECT_NE(found[2].find("000001"), std::string::npos);
}

TEST(TrainCheckpointTest, NewestValidSkipsCorruptAndWarns) {
  std::string dir = FreshDir("ts_skip");
  training::TrainCheckpoint state = MakeState();
  state.next_epoch = 1;
  std::string older = dir + "/" + training::TrainCheckpointFileName(1);
  ASSERT_TRUE(training::SaveTrainCheckpoint(older, state).ok());
  state.next_epoch = 2;
  std::string newer = dir + "/" + training::TrainCheckpointFileName(2);
  ASSERT_TRUE(training::SaveTrainCheckpoint(newer, state).ok());
  FlipMiddleByte(newer);

  training::TrainCheckpoint loaded;
  std::string from;
  ASSERT_TRUE(
      training::LoadNewestValidTrainCheckpoint(dir, &loaded, &from).ok());
  EXPECT_EQ(from, older);
  EXPECT_EQ(loaded.next_epoch, 1);

  FlipMiddleByte(older);
  EXPECT_EQ(training::LoadNewestValidTrainCheckpoint(dir, &loaded, &from).code(),
            core::StatusCode::kNotFound);
}

// -- Resumable training on the real model ------------------------------------

std::shared_ptr<data::TrafficDataset> TinyWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = 4;
  config.num_corridors = 2;
  config.steps_per_day = 24;
  config.num_days = 5;
  config.seed = 21;
  return std::make_shared<data::TrafficDataset>(GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig TinyModelConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 24;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  return config;
}

struct TrainRun {
  std::shared_ptr<data::TrafficDataset> dataset;
  std::unique_ptr<data::WindowDataset> windows;
  data::SplitIndices split;
  data::Normalizer normalizer;
  std::unique_ptr<model_ns::SstbanModel> model;
};

TrainRun MakeRun() {
  TrainRun run;
  run.dataset = TinyWorld();
  run.windows = std::make_unique<data::WindowDataset>(run.dataset, 6, 6);
  run.split = data::ChronologicalSplit(*run.windows);
  run.normalizer = data::Normalizer::Fit(run.dataset->signals);
  run.model = std::make_unique<model_ns::SstbanModel>(TinyModelConfig());
  return run;
}

training::TrainerConfig BaseTrainerConfig() {
  training::TrainerConfig config;
  config.max_epochs = 4;
  config.batch_size = 8;
  config.learning_rate = 1e-3f;
  return config;
}

void ExpectModelsBitwiseEqual(nn::Module& a, nn::Module& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].second.shape(), pb[i].second.shape()) << pa[i].first;
    EXPECT_EQ(std::memcmp(pa[i].second.value().data(),
                          pb[i].second.value().data(),
                          sizeof(float) *
                              static_cast<size_t>(pa[i].second.value().size())),
              0)
        << "parameter diverged after resume: " << pa[i].first;
  }
}

TEST(TrainerResumeTest, ResumeIsBitwiseIdenticalToUninterruptedRun) {
  // Reference: 4 epochs straight through, checkpointing each epoch.
  std::string dir_a = FreshDir("resume_ref");
  TrainRun ref = MakeRun();
  training::TrainerConfig config = BaseTrainerConfig();
  config.checkpoint_dir = dir_a;
  training::Trainer(config).Train(ref.model.get(), *ref.windows, ref.split,
                                  ref.normalizer);

  // Interrupted: 2 epochs, then a brand-new model + trainer resumes to 4.
  std::string dir_b = FreshDir("resume_cut");
  {
    TrainRun phase1 = MakeRun();
    training::TrainerConfig cut = BaseTrainerConfig();
    cut.max_epochs = 2;
    cut.checkpoint_dir = dir_b;
    training::Trainer(cut).Train(phase1.model.get(), *phase1.windows,
                                 phase1.split, phase1.normalizer);
  }
  TrainRun resumed = MakeRun();
  training::TrainerConfig cont = BaseTrainerConfig();
  cont.checkpoint_dir = dir_b;
  training::TrainStats stats = training::Trainer(cont).Train(
      resumed.model.get(), *resumed.windows, resumed.split,
      resumed.normalizer);
  EXPECT_EQ(stats.start_epoch, 2);
  EXPECT_FALSE(stats.resumed_from.empty());
  EXPECT_EQ(stats.epochs_run, 4);

  ExpectModelsBitwiseEqual(*ref.model, *resumed.model);
  // The whole persisted training state — weights, Adam moments, RNG
  // streams, patience counters, loss history — converged to identical
  // bytes, not just the weights.
  EXPECT_EQ(ReadAll(dir_a + "/" + training::TrainCheckpointFileName(4)),
            ReadAll(dir_b + "/" + training::TrainCheckpointFileName(4)));
}

TEST(TrainerResumeTest, CorruptNewestCheckpointFallsBackToOlderOne) {
  std::string dir_a = FreshDir("fallback_ref");
  TrainRun ref = MakeRun();
  training::TrainerConfig config = BaseTrainerConfig();
  config.checkpoint_dir = dir_a;
  training::Trainer(config).Train(ref.model.get(), *ref.windows, ref.split,
                                  ref.normalizer);

  std::string dir_b = FreshDir("fallback_cut");
  {
    TrainRun phase1 = MakeRun();
    training::TrainerConfig cut = BaseTrainerConfig();
    cut.max_epochs = 2;
    cut.checkpoint_dir = dir_b;
    training::Trainer(cut).Train(phase1.model.get(), *phase1.windows,
                                 phase1.split, phase1.normalizer);
  }
  // Tear the newest checkpoint; resume must drop back to epoch 1 and
  // re-run epoch 2 instead of aborting — and still land on identical bytes.
  FlipMiddleByte(dir_b + "/" + training::TrainCheckpointFileName(2));
  TrainRun resumed = MakeRun();
  training::TrainerConfig cont = BaseTrainerConfig();
  cont.checkpoint_dir = dir_b;
  training::TrainStats stats = training::Trainer(cont).Train(
      resumed.model.get(), *resumed.windows, resumed.split,
      resumed.normalizer);
  EXPECT_EQ(stats.start_epoch, 1);
  ExpectModelsBitwiseEqual(*ref.model, *resumed.model);
}

TEST(TrainerResumeTest, StopRequestCheckpointsAtEpochBoundaryAndResumes) {
  std::string dir_a = FreshDir("stop_ref");
  TrainRun ref = MakeRun();
  training::TrainerConfig config = BaseTrainerConfig();
  config.checkpoint_dir = dir_a;
  training::Trainer(config).Train(ref.model.get(), *ref.windows, ref.split,
                                  ref.normalizer);

  std::string dir_b = FreshDir("stop_cut");
  {
    TrainRun phase1 = MakeRun();
    training::TrainerConfig cut = BaseTrainerConfig();
    cut.checkpoint_dir = dir_b;
    cut.checkpoint_every_epochs = 100;  // only the stop should checkpoint
    int epochs_seen = 0;
    cut.stop_requested = [&epochs_seen] { return ++epochs_seen >= 2; };
    training::TrainStats stats = training::Trainer(cut).Train(
        phase1.model.get(), *phase1.windows, phase1.split, phase1.normalizer);
    EXPECT_TRUE(stats.stopped_by_request);
    EXPECT_EQ(stats.epochs_run, 2);
    EXPECT_TRUE(
        fs::exists(dir_b + "/" + training::TrainCheckpointFileName(2)));
  }
  TrainRun resumed = MakeRun();
  training::TrainerConfig cont = BaseTrainerConfig();
  cont.checkpoint_dir = dir_b;
  training::Trainer(cont).Train(resumed.model.get(), *resumed.windows,
                                resumed.split, resumed.normalizer);
  ExpectModelsBitwiseEqual(*ref.model, *resumed.model);
}

TEST(TrainerResumeTest, IncompatibleCheckpointStartsFresh) {
  std::string dir = FreshDir("incompat");
  {
    TrainRun phase1 = MakeRun();
    training::TrainerConfig cut = BaseTrainerConfig();
    cut.max_epochs = 2;
    cut.checkpoint_dir = dir;
    training::Trainer(cut).Train(phase1.model.get(), *phase1.windows,
                                 phase1.split, phase1.normalizer);
  }
  // Same directory, different architecture: the checkpoint must be
  // ignored, not crash the run or corrupt the model.
  TrainRun other = MakeRun();
  model_ns::SstbanConfig bigger = TinyModelConfig();
  bigger.hidden_dim = 8;
  auto model = std::make_unique<model_ns::SstbanModel>(bigger);
  training::TrainerConfig config = BaseTrainerConfig();
  config.max_epochs = 1;
  config.checkpoint_dir = dir;
  training::TrainStats stats = training::Trainer(config).Train(
      model.get(), *other.windows, other.split, other.normalizer);
  EXPECT_EQ(stats.start_epoch, 0);
  EXPECT_EQ(stats.epochs_run, 1);
}

// -- Early stopping (previously untested) ------------------------------------

TEST(EarlyStoppingTest, PatienceCounterResetsOnImprovement) {
  optim::EarlyStopping early(3);
  EXPECT_FALSE(early.Update(10.0f));
  EXPECT_TRUE(early.improved_last_update());
  EXPECT_FALSE(early.Update(11.0f));  // stale 1
  EXPECT_FALSE(early.Update(12.0f));  // stale 2
  EXPECT_FALSE(early.Update(9.0f));   // improvement resets
  EXPECT_EQ(early.epochs_since_best(), 0);
  EXPECT_FLOAT_EQ(early.best_metric(), 9.0f);
  EXPECT_FALSE(early.Update(9.5f));
  EXPECT_FALSE(early.Update(9.5f));
  EXPECT_TRUE(early.Update(9.5f));  // stale 3 == patience -> stop
}

TEST(EarlyStoppingTest, RestoreStateContinuesCounting) {
  optim::EarlyStopping early(3);
  early.RestoreState(5.0f, 2);
  EXPECT_FLOAT_EQ(early.best_metric(), 5.0f);
  EXPECT_EQ(early.epochs_since_best(), 2);
  EXPECT_TRUE(early.Update(6.0f));  // third stale epoch triggers
}

TEST(EarlyStoppingTest, TrainerRestoresBestEpochWeights) {
  TrainRun run = MakeRun();
  training::TrainerConfig config = BaseTrainerConfig();
  config.max_epochs = 3;
  training::TrainStats stats = training::Trainer(config).Train(
      run.model.get(), *run.windows, run.split, run.normalizer);
  // The restored weights must reproduce the best validation MAE exactly —
  // this pins both the best-epoch snapshot and its restoration.
  training::EvalResult val = training::Evaluate(
      run.model.get(), *run.windows, run.split.val, run.normalizer,
      config.batch_size, false, config.target_feature);
  EXPECT_DOUBLE_EQ(val.overall.mae, stats.best_val_mae);
}

TEST(EarlyStoppingTest, ResumePreservesPatienceCounterExactly) {
  // Train with aggressive LR so validation MAE oscillates and the patience
  // counter takes nontrivial values; checkpoint every epoch.
  std::string dir_a = FreshDir("patience_ref");
  std::string dir_b = FreshDir("patience_cut");
  auto train = [&](const std::string& dir, int max_epochs) {
    TrainRun run = MakeRun();
    training::TrainerConfig config = BaseTrainerConfig();
    config.max_epochs = max_epochs;
    config.learning_rate = 0.05f;
    config.patience = 2;
    config.checkpoint_dir = dir;
    return training::Trainer(config).Train(run.model.get(), *run.windows,
                                           run.split, run.normalizer);
  };
  training::TrainStats ref = train(dir_a, 6);
  train(dir_b, 2);
  training::TrainStats resumed = train(dir_b, 6);
  EXPECT_EQ(resumed.epochs_run, ref.epochs_run);

  training::TrainCheckpoint a, b;
  ASSERT_TRUE(
      training::LoadNewestValidTrainCheckpoint(dir_a, &a, nullptr).ok());
  ASSERT_TRUE(
      training::LoadNewestValidTrainCheckpoint(dir_b, &b, nullptr).ok());
  EXPECT_EQ(a.next_epoch, b.next_epoch);
  EXPECT_EQ(a.early_stale, b.early_stale);
  EXPECT_EQ(a.early_best, b.early_best);
  EXPECT_EQ(a.best_val, b.best_val);
}

}  // namespace
}  // namespace sstban

// Property-based sweeps: randomized shapes and inputs checked against
// reference implementations and algebraic invariants, parameterized with
// TEST_P so each property runs across a grid of configurations.

#include <cmath>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/cpu_features.h"
#include "core/rng.h"
#include "core/storage_pool.h"
#include "core/thread_pool.h"
#include "data/dataset.h"
#include "exec/engine.h"
#include "exec/precision.h"
#include "sstban/config.h"
#include "sstban/masking.h"
#include "sstban/model.h"
#include "sstban/stba_block.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "training/forecast_service.h"

namespace sstban {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

// -- Broadcast algebra --------------------------------------------------------

class BroadcastProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BroadcastProperty, AddMatchesExplicitLoops) {
  auto [b, n, d] = GetParam();
  core::Rng rng(b * 100 + n * 10 + d);
  t::Tensor full = t::Tensor::RandomNormal(t::Shape{b, n, d}, rng);
  t::Tensor row = t::Tensor::RandomNormal(t::Shape{1, n, 1}, rng);
  t::Tensor sum = t::Add(full, row);
  for (int64_t i = 0; i < b; ++i)
    for (int64_t j = 0; j < n; ++j)
      for (int64_t k = 0; k < d; ++k)
        ASSERT_FLOAT_EQ(sum.at({i, j, k}),
                        full.at({i, j, k}) + row.at({0, j, 0}));
}

TEST_P(BroadcastProperty, MulCommutesAndDistributes) {
  auto [b, n, d] = GetParam();
  core::Rng rng(b + n + d);
  t::Tensor x = t::Tensor::RandomNormal(t::Shape{b, n, d}, rng);
  t::Tensor y = t::Tensor::RandomNormal(t::Shape{n, d}, rng);
  t::Tensor z = t::Tensor::RandomNormal(t::Shape{d}, rng);
  EXPECT_TRUE(t::AllClose(t::Mul(x, y), t::Mul(y, x), 1e-5f, 1e-5f));
  // (x + y) * z == x*z + y*z
  t::Tensor lhs = t::Mul(t::Add(x, y), z);
  t::Tensor rhs = t::Add(t::Mul(x, z), t::Mul(y, z));
  EXPECT_TRUE(t::AllClose(lhs, rhs, 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, BroadcastProperty,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(4, 7, 2),
                                           std::make_tuple(3, 1, 8)));

// -- Permute round trips --------------------------------------------------

class PermuteProperty : public ::testing::TestWithParam<int> {};

TEST_P(PermuteProperty, RandomPermutationRoundTrips) {
  core::Rng rng(GetParam());
  // Random rank in [2, 5], random small dims, random permutation.
  int rank = 2 + static_cast<int>(rng.NextBelow(4));
  std::vector<int64_t> dims;
  for (int i = 0; i < rank; ++i) dims.push_back(1 + rng.NextBelow(5));
  std::vector<int64_t> perm64(rank);
  for (int i = 0; i < rank; ++i) perm64[i] = i;
  rng.Shuffle(perm64);
  std::vector<int> perm(perm64.begin(), perm64.end());
  std::vector<int> inverse(rank);
  for (int i = 0; i < rank; ++i) inverse[perm[i]] = i;

  t::Tensor x = t::Tensor::RandomNormal(t::Shape(dims), rng);
  t::Tensor round = t::Permute(t::Permute(x, perm), inverse);
  EXPECT_TRUE(t::AllClose(round, x, 0, 0)) << "seed " << GetParam();
}

TEST_P(PermuteProperty, PermutePreservesMultiset) {
  core::Rng rng(GetParam() + 1000);
  t::Tensor x = t::Tensor::RandomNormal(t::Shape{3, 4, 5}, rng);
  t::Tensor p = t::Permute(x, {2, 0, 1});
  EXPECT_FLOAT_EQ(t::SumAll(p).item(), t::SumAll(x).item());
  EXPECT_FLOAT_EQ(t::MaxAll(p), t::MaxAll(x));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermuteProperty, ::testing::Range(0, 12));

// -- Softmax invariants -----------------------------------------------------

class SoftmaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxProperty, ShiftInvarianceAndNormalization) {
  core::Rng rng(GetParam());
  int64_t rows = 1 + rng.NextBelow(6), cols = 1 + rng.NextBelow(9);
  t::Tensor x = t::Tensor::RandomNormal(t::Shape{rows, cols}, rng, 0.0f, 4.0f);
  t::Tensor s1 = t::Softmax(x);
  // softmax(x + c) == softmax(x) for a per-row constant shift.
  t::Tensor shifted = t::AddScalar(x, 13.7f);
  t::Tensor s2 = t::Softmax(shifted);
  EXPECT_TRUE(t::AllClose(s1, s2, 1e-5f, 1e-4f));
  for (int64_t r = 0; r < rows; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < cols; ++c) {
      float v = s1.at({r, c});
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty, ::testing::Range(100, 110));

// -- Bmm against naive reference, random shapes -------------------------------

class BmmProperty : public ::testing::TestWithParam<int> {};

TEST_P(BmmProperty, MatchesNaiveAtRandomShapes) {
  core::Rng rng(GetParam());
  int64_t batch = 1 + rng.NextBelow(4);
  int64_t m = 1 + rng.NextBelow(10);
  int64_t k = 1 + rng.NextBelow(10);
  int64_t n = 1 + rng.NextBelow(10);
  t::Tensor a = t::Tensor::RandomNormal(t::Shape{batch, m, k}, rng);
  t::Tensor b = t::Tensor::RandomNormal(t::Shape{batch, k, n}, rng);
  t::Tensor c = t::Bmm(a, b);
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0;
        for (int64_t p = 0; p < k; ++p) acc += a.at({bi, i, p}) * b.at({bi, p, j});
        ASSERT_NEAR(c.at({bi, i, j}), acc, 1e-3 + 1e-3 * std::fabs(acc))
            << "seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BmmProperty, ::testing::Range(200, 216));

// -- Gradient linearity ---------------------------------------------------

class GradientProperty : public ::testing::TestWithParam<int> {};

TEST_P(GradientProperty, GradOfScaledLossScales) {
  core::Rng rng(GetParam());
  t::Tensor x0 = t::Tensor::RandomNormal(t::Shape{4, 3}, rng);
  auto grad_of = [&](float scale) {
    ag::Variable x(x0.Clone(), true);
    ag::Variable loss = ag::MulScalar(ag::SumAll(ag::Square(x)), scale);
    loss.Backward();
    return x.grad().Clone();
  };
  t::Tensor g1 = grad_of(1.0f);
  t::Tensor g3 = grad_of(3.0f);
  EXPECT_TRUE(t::AllClose(t::MulScalar(g1, 3.0f), g3, 1e-5f, 1e-5f));
}

TEST_P(GradientProperty, BackwardTwiceFromFreshGraphsIsIdentical) {
  core::Rng rng(GetParam() + 50);
  t::Tensor x0 = t::Tensor::RandomNormal(t::Shape{5}, rng);
  auto run = [&]() {
    ag::Variable x(x0.Clone(), true);
    ag::MeanAll(ag::Tanh(ag::Mul(x, x))).Backward();
    return x.grad().Clone();
  };
  EXPECT_TRUE(t::AllClose(run(), run(), 0, 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientProperty, ::testing::Range(300, 308));

// -- Masking over the full strategy x rate grid -----------------------------

class MaskGridProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MaskGridProperty, MaskedFractionNeverExceedsRatePlusOnePatch) {
  auto [strategy_index, rate] = GetParam();
  auto strategy = static_cast<sstban::MaskStrategy>(strategy_index);
  core::Rng rng(strategy_index * 31 + static_cast<int>(rate * 100));
  const int64_t p = 24, n = 7, c = 2, patch = 5;
  t::Tensor mask = sstban::GenerateMask(p, n, c, patch, rate, strategy, rng);
  double masked = 1.0 - t::MeanAll(mask).item();
  // Sampling floors the patch count, so the realized fraction can never
  // exceed the requested rate by more than one patch's worth.
  EXPECT_LE(masked, rate + 1.0 / 4.0 + 1e-6);
  // And something must remain visible.
  EXPECT_LT(masked, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MaskGridProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75)));

// -- STBA block shape grid ----------------------------------------------------

class StbaShapeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StbaShapeProperty, ForwardPreservesShapeAndStaysFinite) {
  auto [batch, time, nodes] = GetParam();
  core::Rng rng(batch * 7 + time * 3 + nodes);
  sstban::StbaBlock block(4, 2, 2, 2, /*use_bottleneck=*/true, rng);
  ag::Variable h(t::Tensor::RandomNormal(t::Shape{batch, time, nodes, 4}, rng));
  ag::Variable e(t::Tensor::RandomNormal(t::Shape{batch, time, nodes, 4}, rng));
  ag::Variable out = block.Forward(h, e);
  EXPECT_EQ(out.shape(), t::Shape({batch, time, nodes, 4}));
  EXPECT_FALSE(t::HasNonFinite(out.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StbaShapeProperty,
    ::testing::Combine(::testing::Values(1, 3), ::testing::Values(2, 9),
                       ::testing::Values(1, 6)));

// -- Thread-count determinism -------------------------------------------------

struct TrainingRunResult {
  float loss;
  std::vector<std::pair<std::string, t::Tensor>> grads;
};

// One full SSTBAN forward + backward from a fresh model. Model init and the
// masking RNG are functions of the config seed, so two runs differ only if
// the kernels themselves are nondeterministic.
TrainingRunResult RunTrainingStep(int parallelism_cap) {
  core::SetParallelismCapForTesting(parallelism_cap);
  sstban::SstbanConfig c;
  c.num_nodes = 5;
  c.input_len = 8;
  c.output_len = 8;
  c.num_features = 1;
  c.steps_per_day = 12;
  c.hidden_dim = 4;
  c.num_heads = 2;
  c.encoder_blocks = 1;
  c.decoder_blocks = 1;
  c.recon_blocks = 1;
  c.temporal_refs = 2;
  c.spatial_refs = 2;
  c.patch_len = 2;
  c.mask_rate = 0.3;
  c.lambda = 0.2;
  sstban::SstbanModel model(c);
  data::Batch batch;
  core::Rng rng(42);
  batch.x = t::Tensor::RandomNormal(
      t::Shape{2, c.input_len, c.num_nodes, c.num_features}, rng);
  batch.y = t::Tensor::RandomNormal(
      t::Shape{2, c.output_len, c.num_nodes, c.num_features}, rng);
  for (int64_t i = 0; i < 2 * c.input_len; ++i) {
    batch.tod_in.push_back(i % c.steps_per_day);
    batch.dow_in.push_back((i / c.steps_per_day) % 7);
  }
  for (int64_t i = 0; i < 2 * c.output_len; ++i) {
    batch.tod_out.push_back((i + 3) % c.steps_per_day);
    batch.dow_out.push_back(((i + 3) / c.steps_per_day) % 7);
  }
  ag::Variable loss = model.TrainingLoss(batch.x, batch.y, batch);
  model.ZeroGrad();
  loss.Backward();
  TrainingRunResult result;
  result.loss = loss.item();
  for (auto& [name, p] : model.NamedParameters()) {
    result.grads.emplace_back(name, p.grad().Clone());
  }
  core::SetParallelismCapForTesting(0);
  return result;
}

void ExpectBitwiseIdentical(const TrainingRunResult& a,
                            const TrainingRunResult& b,
                            const std::string& what) {
  // Exact float equality: the kernels promise bitwise determinism, so any
  // drift — even 1 ulp — is a partitioning bug, not acceptable noise.
  EXPECT_EQ(a.loss, b.loss) << what;
  ASSERT_EQ(a.grads.size(), b.grads.size()) << what;
  for (size_t g = 0; g < a.grads.size(); ++g) {
    ASSERT_EQ(a.grads[g].first, b.grads[g].first) << what;
    const t::Tensor& ta = a.grads[g].second;
    const t::Tensor& tb = b.grads[g].second;
    ASSERT_EQ(ta.shape(), tb.shape()) << what << ": " << a.grads[g].first;
    for (int64_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta.data()[i], tb.data()[i])
          << what << ": grad " << a.grads[g].first << " element " << i;
    }
  }
}

TEST(DeterminismProperty, TrainingStepIsBitwiseIdenticalAcrossThreadCounts) {
  TrainingRunResult sequential = RunTrainingStep(/*parallelism_cap=*/1);
  TrainingRunResult parallel = RunTrainingStep(/*parallelism_cap=*/8);
  TrainingRunResult parallel_again = RunTrainingStep(/*parallelism_cap=*/8);
  EXPECT_GT(sequential.grads.size(), 0u);
  EXPECT_TRUE(std::isfinite(sequential.loss));
  ExpectBitwiseIdentical(sequential, parallel, "1 thread vs 8 threads");
  ExpectBitwiseIdentical(parallel, parallel_again, "8 threads run-to-run");
}

// The storage pool must be transparent: recycled (uninitialized) buffers
// are always fully overwritten before use, so a training step produces
// bit-identical losses and gradients with the pool on or off — including a
// warm pool whose buffers carry stale values from the previous run — and
// independently of the thread count.
// -- Serving-forward determinism per numeric mode ----------------------------

// ISSUE 8 acceptance: the bitwise 1-vs-N-thread property must hold
// *independently* in every numeric mode of the serving forward — fp32 on the
// scalar kernel tier, fp32 on the active SIMD tier, bf16, and int8. Modes
// produce different numbers from each other; within a mode, thread count
// must not change a single bit.
t::Tensor RunServingForward(exec::PrecisionMode precision,
                            core::SimdLevel level, int parallelism_cap) {
  core::SimdLevel prior = core::ActiveSimdLevel();
  core::SetSimdLevelForTesting(level);
  core::SetParallelismCapForTesting(parallelism_cap);
  sstban::SstbanConfig c;
  c.num_nodes = 6;
  c.input_len = 8;
  c.output_len = 8;
  c.num_features = 1;
  c.steps_per_day = 12;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.encoder_blocks = 1;
  c.decoder_blocks = 1;
  c.temporal_refs = 2;
  c.spatial_refs = 2;
  c.patch_len = 2;
  c.self_supervised = false;
  c.seed = 77;
  sstban::SstbanModel model(c);
  model.SetTraining(false);
  model.set_inference_precision(precision);
  core::Rng rng(99);
  data::Batch batch;
  batch.x = t::Tensor::RandomUniform(
      t::Shape{2, c.input_len, c.num_nodes, c.num_features}, rng, -1.5f, 1.5f);
  batch.y = t::Tensor::Zeros(t::Shape{2, c.output_len, c.num_nodes, 1});
  for (int64_t i = 0; i < 2; ++i) {
    training::AppendCalendarFeatures(/*first_step=*/4 + 3 * i, c.input_len,
                                     c.output_len, c.steps_per_day, &batch);
  }
  exec::InferenceEngine* engine = model.inference_engine();
  EXPECT_NE(engine, nullptr);
  t::Tensor out;
  core::Status status = engine->Run(batch.x, batch, &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  core::SetParallelismCapForTesting(0);
  core::SetSimdLevelForTesting(prior);
  return out;
}

TEST(DeterminismProperty, ServingForwardIsBitwiseIdenticalPerNumericMode) {
  struct Mode {
    std::string name;
    exec::PrecisionMode precision;
    core::SimdLevel level;
  };
  std::vector<Mode> modes = {
      {"fp32-scalar", exec::PrecisionMode::kFp32, core::SimdLevel::kScalar},
      {"bf16", exec::PrecisionMode::kBf16, core::ActiveSimdLevel()},
      {"int8", exec::PrecisionMode::kInt8, core::ActiveSimdLevel()},
  };
  const core::CpuFeatures& f = core::DetectCpuFeatures();
  if (f.avx2 && f.fma) {
    modes.push_back(
        {"fp32-simd", exec::PrecisionMode::kFp32, core::SimdLevel::kAvx2});
  }
  for (const Mode& mode : modes) {
    SCOPED_TRACE(mode.name);
    t::Tensor seq = RunServingForward(mode.precision, mode.level, 1);
    t::Tensor par = RunServingForward(mode.precision, mode.level, 8);
    ASSERT_EQ(seq.shape(), par.shape());
    EXPECT_FALSE(t::HasNonFinite(seq));
    for (int64_t i = 0; i < seq.size(); ++i) {
      ASSERT_EQ(seq.data()[i], par.data()[i])
          << mode.name << " element " << i;
    }
  }
}

TEST(DeterminismProperty, TrainingStepIsBitwiseIdenticalPoolOnVsOff) {
  core::StoragePool& pool = core::StoragePool::Global();
  pool.SetEnabledForTesting(true);
  TrainingRunResult pooled_cold = RunTrainingStep(/*parallelism_cap=*/1);
  TrainingRunResult pooled_warm = RunTrainingStep(/*parallelism_cap=*/1);
  TrainingRunResult pooled_threads = RunTrainingStep(/*parallelism_cap=*/8);
  pool.SetEnabledForTesting(false);
  TrainingRunResult plain = RunTrainingStep(/*parallelism_cap=*/1);
  pool.SetEnabledForTesting(true);
  EXPECT_TRUE(std::isfinite(plain.loss));
  ExpectBitwiseIdentical(plain, pooled_cold, "pool off vs cold pool");
  ExpectBitwiseIdentical(plain, pooled_warm, "pool off vs warm pool");
  ExpectBitwiseIdentical(plain, pooled_threads,
                         "pool off vs warm pool, 8 threads");
}

}  // namespace
}  // namespace sstban

// Tests for the components beyond the paper's core: checkpoint
// serialization, learning-rate schedulers, the extra activation/loss ops,
// the ForecastService deployment wrapper, and SSTBAN's missing-data
// prediction path.

#include <cmath>
#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/rng.h"
#include "data/synthetic_world.h"
#include "gradcheck.h"
#include "nn/mlp.h"
#include "nn/serialization.h"
#include "optim/lr_scheduler.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/forecast_service.h"
#include "training/trainer.h"

namespace sstban {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
using ::sstban::testing::ExpectGradientsMatch;

t::Tensor Rand(t::Shape shape, uint64_t seed) {
  core::Rng rng(seed);
  return t::Tensor::RandomNormal(std::move(shape), rng, 0.0f, 0.7f);
}

// -- Serialization -----------------------------------------------------------

TEST(SerializationTest, RoundTripRestoresExactValues) {
  core::Rng rng(1);
  nn::Mlp original({4, 8, 2}, rng);
  std::string path = ::testing::TempDir() + "/ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(original, path).ok());

  core::Rng rng2(999);  // different init
  nn::Mlp restored({4, 8, 2}, rng2);
  ASSERT_TRUE(nn::LoadParameters(&restored, path).ok());

  auto a = original.NamedParameters();
  auto b = restored.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(t::AllClose(a[i].second.value(), b[i].second.value(), 0, 0))
        << a[i].first;
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsArchitectureMismatch) {
  core::Rng rng(2);
  nn::Mlp original({4, 8, 2}, rng);
  std::string path = ::testing::TempDir() + "/ckpt2.bin";
  ASSERT_TRUE(nn::SaveParameters(original, path).ok());
  nn::Mlp wrong_shape({4, 16, 2}, rng);
  EXPECT_FALSE(nn::LoadParameters(&wrong_shape, path).ok());
  nn::Mlp wrong_depth({4, 8, 8, 2}, rng);
  EXPECT_FALSE(nn::LoadParameters(&wrong_depth, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsGarbageFile) {
  std::string path = ::testing::TempDir() + "/garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a checkpoint at all", f);
  fclose(f);
  core::Rng rng(3);
  nn::Mlp model({2, 2}, rng);
  EXPECT_FALSE(nn::LoadParameters(&model, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIoError) {
  core::Rng rng(4);
  nn::Mlp model({2, 2}, rng);
  auto status = nn::LoadParameters(&model, "/nonexistent/ckpt.bin");
  EXPECT_EQ(status.code(), core::StatusCode::kIoError);
}

TEST(SerializationTest, FullSstbanModelRoundTrip) {
  sstban::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 12;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  sstban::SstbanModel a(config);
  std::string path = ::testing::TempDir() + "/sstban.bin";
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());
  config.seed = 777;  // different init
  sstban::SstbanModel b(config);
  ASSERT_TRUE(nn::LoadParameters(&b, path).ok());
  // Identical weights -> identical predictions.
  data::Batch batch;
  core::Rng rng(5);
  batch.x = t::Tensor::RandomNormal(t::Shape{2, 6, 4, 1}, rng);
  batch.y = t::Tensor::Zeros(t::Shape{2, 6, 4, 1});
  for (int i = 0; i < 12; ++i) {
    batch.tod_in.push_back(i % 12);
    batch.dow_in.push_back(0);
    batch.tod_out.push_back(i % 12);
    batch.dow_out.push_back(0);
  }
  EXPECT_TRUE(t::AllClose(a.Predict(batch.x, batch).value(),
                          b.Predict(batch.x, batch).value(), 1e-6f, 1e-6f));
  std::remove(path.c_str());
}

// -- LR schedulers ---------------------------------------------------------

TEST(LrSchedulerTest, StepDecayHalvesAtBoundaries) {
  ag::Variable p(t::Tensor::Zeros(t::Shape{1}), true);
  optim::Sgd opt({p}, 1.0f);
  optim::StepDecay sched(&opt, /*step_size=*/2, /*gamma=*/0.5f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 1.0f);
  sched.Step();  // epoch 1
  EXPECT_FLOAT_EQ(opt.learning_rate(), 1.0f);
  sched.Step();  // epoch 2
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5f);
  sched.Step();
  sched.Step();  // epoch 4
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.25f);
}

TEST(LrSchedulerTest, CosineAnnealsToMinimum) {
  ag::Variable p(t::Tensor::Zeros(t::Shape{1}), true);
  optim::Sgd opt({p}, 1.0f);
  optim::CosineAnnealing sched(&opt, /*max_epochs=*/10, /*min_rate=*/0.1f);
  float prev = opt.learning_rate();
  for (int i = 0; i < 10; ++i) {
    sched.Step();
    EXPECT_LE(opt.learning_rate(), prev + 1e-6f);  // monotone decreasing
    prev = opt.learning_rate();
  }
  EXPECT_NEAR(opt.learning_rate(), 0.1f, 1e-5f);
  sched.Step();  // past the horizon: stays at the floor
  EXPECT_NEAR(opt.learning_rate(), 0.1f, 1e-5f);
}

// -- New ops -----------------------------------------------------------------

TEST(NewOpsTest, SoftplusValuesAndStability) {
  ag::Variable x(t::Tensor::FromVector(t::Shape{3}, {0.0f, 100.0f, -100.0f}));
  ag::Variable y = ag::Softplus(x);
  EXPECT_NEAR(y.value().data()[0], std::log(2.0f), 1e-5f);
  EXPECT_NEAR(y.value().data()[1], 100.0f, 1e-3f);
  EXPECT_NEAR(y.value().data()[2], 0.0f, 1e-3f);
  EXPECT_FALSE(t::HasNonFinite(y.value()));
}

TEST(NewOpsTest, SoftplusGradCheck) {
  ExpectGradientsMatch(
      [](std::vector<ag::Variable>& v) { return ag::SumAll(ag::Softplus(v[0])); },
      {Rand({5}, 6)});
}

TEST(NewOpsTest, GeluMatchesKnownValues) {
  ag::Variable x(t::Tensor::FromVector(t::Shape{3}, {0.0f, 1.0f, -1.0f}));
  ag::Variable y = ag::Gelu(x);
  EXPECT_NEAR(y.value().data()[0], 0.0f, 1e-5f);
  EXPECT_NEAR(y.value().data()[1], 0.8412f, 1e-3f);
  EXPECT_NEAR(y.value().data()[2], -0.1588f, 1e-3f);
}

TEST(NewOpsTest, GeluGradCheck) {
  ExpectGradientsMatch(
      [](std::vector<ag::Variable>& v) { return ag::SumAll(ag::Gelu(v[0])); },
      {Rand({6}, 7)});
}

TEST(NewOpsTest, HuberMatchesQuadraticAndLinearRegimes) {
  // Small errors: 0.5 e^2; large errors: delta(|e| - 0.5 delta).
  ag::Variable pred(t::Tensor::FromVector(t::Shape{2}, {0.5f, 5.0f}));
  ag::Variable target(t::Tensor::Zeros(t::Shape{2}));
  float loss = ag::HuberLoss(pred, target, 1.0f).item();
  float expected = 0.5f * (0.5f * 0.25f + (5.0f - 0.5f));
  EXPECT_NEAR(loss, expected, 1e-5f);
}

TEST(NewOpsTest, HuberGradCheck) {
  // Keep |errors| away from the delta kink for finite differences.
  t::Tensor pred = t::Tensor::FromVector(t::Shape{4}, {0.2f, 3.0f, -0.3f, -2.5f});
  t::Tensor target = t::Tensor::Zeros(t::Shape{4});
  ExpectGradientsMatch(
      [&target](std::vector<ag::Variable>& v) {
        return ag::HuberLoss(v[0], ag::Variable(target), 1.0f);
      },
      {pred});
}

TEST(NewOpsTest, MaskedMaeIgnoresNearZeroTargets) {
  ag::Variable pred(t::Tensor::FromVector(t::Shape{3}, {1.0f, 5.0f, 9.0f}));
  ag::Variable target(t::Tensor::FromVector(t::Shape{3}, {0.0f, 4.0f, 10.0f}));
  // Entry 0 excluded (target 0); mean(|1|, |1|) over 2 valid entries = 1.
  EXPECT_NEAR(ag::MaskedMaeLoss(pred, target).item(), 1.0f, 1e-5f);
}

TEST(NewOpsTest, MaskedMaeAllMaskedIsZeroAndSafe) {
  ag::Variable pred(t::Tensor::FromVector(t::Shape{2}, {1.0f, 2.0f}), true);
  ag::Variable target(t::Tensor::Zeros(t::Shape{2}));
  ag::Variable loss = ag::MaskedMaeLoss(pred, target);
  EXPECT_FLOAT_EQ(loss.item(), 0.0f);
  loss.Backward();  // must not crash; gradient simply zero
  EXPECT_FLOAT_EQ(pred.grad().data()[0], 0.0f);
}

// -- ForecastService -----------------------------------------------------

TEST(ForecastServiceTest, ProducesDenormalizedForecast) {
  data::SyntheticWorldConfig world;
  world.num_nodes = 4;
  world.num_corridors = 2;
  world.steps_per_day = 12;
  world.num_days = 6;
  world.seed = 50;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);

  sstban::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 12;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  sstban::SstbanModel model(config);

  training::ForecastService service(&model, norm, 6, 6, 12);
  tensor::Tensor recent = t::Slice(dataset->signals, 0, 30, 6);
  auto forecast = service.Forecast(recent, 30);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_EQ(forecast.value().shape(), t::Shape({6, 4, 1}));
  // Denormalized output should live on the raw flow scale (mean is far
  // from 0 where the z-scores would sit).
  EXPECT_GT(t::MeanAll(forecast.value()).item(), 1.0f);
}

TEST(ForecastServiceTest, RejectsBadShapes) {
  sstban::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 12;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  sstban::SstbanModel model(config);
  training::ForecastService service(&model, data::Normalizer(), 6, 6, 12);
  auto result = service.Forecast(t::Tensor::Zeros(t::Shape{5, 4, 1}), 0);
  EXPECT_FALSE(result.ok());
  auto result2 = service.Forecast(t::Tensor::Zeros(t::Shape{6, 4, 1}), -3);
  EXPECT_FALSE(result2.ok());
}

TEST(ForecastServiceTest, RejectsWrongNodeOrFeatureCount) {
  sstban::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 12;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  sstban::SstbanModel model(config);
  training::ForecastService service(&model, data::Normalizer(), 6, 6, 12,
                                    /*num_nodes=*/4, /*num_features=*/1);
  // Right rank and length, wrong node count: must name both shapes.
  auto result = service.Forecast(t::Tensor::Zeros(t::Shape{6, 5, 1}), 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("[6, 5, 1]"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("[6, 4, 1]"), std::string::npos)
      << result.status().message();
  // Wrong feature count is caught the same way.
  auto result2 = service.Forecast(t::Tensor::Zeros(t::Shape{6, 4, 2}), 0);
  ASSERT_FALSE(result2.ok());
  EXPECT_EQ(result2.status().code(), core::StatusCode::kInvalidArgument);
}

// -- SSTBAN extensions ------------------------------------------------------

TEST(SstbanExtensionsTest, PredictWithMissingIgnoresMaskedPositions) {
  sstban::SstbanConfig config;
  config.num_nodes = 5;
  config.input_len = 8;
  config.output_len = 8;
  config.num_features = 1;
  config.steps_per_day = 12;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  sstban::SstbanModel model(config);
  data::Batch batch;
  core::Rng rng(9);
  batch.x = t::Tensor::RandomNormal(t::Shape{1, 8, 5, 1}, rng);
  batch.y = t::Tensor::Zeros(t::Shape{1, 8, 5, 1});
  for (int i = 0; i < 8; ++i) {
    batch.tod_in.push_back(i % 12);
    batch.dow_in.push_back(0);
    batch.tod_out.push_back((i + 8) % 12);
    batch.dow_out.push_back(0);
  }
  t::Tensor keep = t::Tensor::Ones(t::Shape{1, 8, 5});
  keep.at({0, 3, 2}) = 0.0f;
  ag::Variable out1 = model.PredictWithMissing(batch.x, keep, batch);
  // Corrupting the masked observation must not change the forecast.
  t::Tensor x2 = batch.x.Clone();
  x2.at({0, 3, 2, 0}) += 1000.0f;
  ag::Variable out2 = model.PredictWithMissing(x2, keep, batch);
  EXPECT_TRUE(t::AllClose(out1.value(), out2.value(), 1e-4f, 1e-4f));
  EXPECT_FALSE(t::HasNonFinite(out1.value()));
}

TEST(SstbanExtensionsTest, LambdaMutatorChangesLossMix) {
  sstban::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 12;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.lambda = 0.5;
  sstban::SstbanModel model(config);
  model.SetTraining(true);
  data::Batch batch;
  core::Rng rng(11);
  batch.x = t::Tensor::RandomNormal(t::Shape{1, 6, 4, 1}, rng);
  batch.y = t::Tensor::RandomNormal(t::Shape{1, 6, 4, 1}, rng);
  for (int i = 0; i < 6; ++i) {
    batch.tod_in.push_back(i);
    batch.dow_in.push_back(0);
    batch.tod_out.push_back(i + 6);
    batch.dow_out.push_back(0);
  }
  model.set_lambda(1.0);
  auto out_recon = model.ForwardTwoBranch(batch.x, batch.y, batch);
  EXPECT_NEAR(out_recon.total_loss.item(), out_recon.alignment_loss.item(), 1e-5f);
  model.set_lambda(0.0);
  auto out_forecast = model.ForwardTwoBranch(batch.x, batch.y, batch);
  EXPECT_NEAR(out_forecast.total_loss.item(), out_forecast.forecast_loss.item(),
              1e-5f);
  model.set_self_supervised(false);
  auto out_off = model.ForwardTwoBranch(batch.x, batch.y, batch);
  EXPECT_FALSE(out_off.alignment_loss.defined());
}

}  // namespace
}  // namespace sstban

// The three ROADMAP drift scenarios, end-to-end through the
// AdaptationController against a trained SSTBAN incumbent:
//   1. sudden sensor recalibration  -> detect, adapt, gate decides;
//   2. seasonal demand shift        -> detect, adapt, gate decides;
//   3. growing city (new sensors)   -> refuse at the ingest boundary, no
//      adaptation — model geometry is fixed at training time.
// Everything is seeded, so each scenario's event trace is deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/failpoint.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "serving/model_registry.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "streaming/adaptation_controller.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "training/trainer.h"

namespace sstban::streaming {
namespace {

namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kNodes = 4;
constexpr int64_t kFeatures = 1;
constexpr int64_t kSteps = 6;  // P = Q
constexpr int64_t kStepsPerDay = 12;

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override { core::FailPoint::ClearAll(); }
  void TearDown() override { core::FailPoint::ClearAll(); }
};
using DriftTransformTest = ScenarioTest;

data::SyntheticWorldConfig WorldConfig() {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 2;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 10;
  config.seed = 50;
  return config;
}

model_ns::SstbanConfig ModelConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.seed = 1;
  return config;
}

// One [N, C] slice of `dataset` at time index `i`, as the feed delivers it.
t::Tensor SliceAt(const data::TrafficDataset& dataset, int64_t i) {
  return t::Slice(dataset.signals, 0, i, 1)
      .Reshape(t::Shape{dataset.num_nodes(), dataset.num_features()});
}

struct Deployment {
  std::shared_ptr<data::TrafficDataset> base;
  data::Normalizer normalizer = data::Normalizer::FromMoments({0.0f}, {1.0f});
  serving::ModelRegistry::ModelFactory factory;
  std::unique_ptr<serving::ModelRegistry> registry;
  std::unique_ptr<AdaptationController> controller;
};

// Trains a small incumbent on the base world and stands up the full
// streaming pipeline around it.
Deployment MakeDeployment() {
  Deployment d;
  d.base = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(WorldConfig()));
  data::WindowDataset windows(d.base, kSteps, kSteps);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  d.normalizer = data::Normalizer::Fit(d.base->signals);

  auto incumbent = std::make_unique<model_ns::SstbanModel>(ModelConfig());
  training::TrainerConfig train;
  train.max_epochs = 2;
  train.batch_size = 8;
  training::Trainer(train).Train(incumbent.get(), windows, split,
                                 d.normalizer);

  d.factory = [] { return std::make_unique<model_ns::SstbanModel>(ModelConfig()); };
  d.registry =
      std::make_unique<serving::ModelRegistry>(d.factory, d.normalizer);
  d.registry->Install(std::move(incumbent), "initial-train");

  AdaptationControllerOptions options;
  options.ingest.num_nodes = kNodes;
  options.ingest.num_features = kFeatures;
  options.ingest.input_len = kSteps;
  options.ingest.output_len = kSteps;
  options.ingest.steps_per_day = kStepsPerDay;
  options.drift.warmup = 10;
  options.drift.slack_sigma = 1.0;
  options.drift.threshold_sigma = 6.0;
  options.drift.confirm = 2;
  options.drift.cooldown = 4;
  options.adapter.num_steps = 6;
  options.adapter.batch_size = 4;
  options.eval_stride = 3;
  options.shadow_windows = 4;
  options.adapt_windows = 12;
  options.factory = d.factory;
  d.controller =
      std::make_unique<AdaptationController>(options, d.registry.get());
  return d;
}

// Streams dataset slices [from, to) and returns the events that fired.
std::vector<StreamEvent> StreamRange(Deployment& d,
                                     const data::TrafficDataset& dataset,
                                     int64_t from, int64_t to) {
  std::vector<StreamEvent> events;
  for (int64_t i = from; i < to; ++i) {
    auto event = d.controller->OnSlice(SliceAt(dataset, i), i);
    EXPECT_TRUE(event.ok()) << "slice " << i << ": "
                            << event.status().ToString();
    if (event.ok()) events.push_back(event.value());
  }
  return events;
}

int64_t Count(const std::vector<StreamEvent>& events, StreamEvent wanted) {
  int64_t count = 0;
  for (StreamEvent event : events) count += event == wanted ? 1 : 0;
  return count;
}

// Shared body for the two true-drift scenarios: stream the unchanged prefix
// (must stay quiet), stream the drifted suffix (must confirm and run at
// least one gated adaptation round), and check the registry moved only
// through principled decisions.
void RunDriftScenario(Deployment& d, const data::TrafficDataset& drifted,
                      int64_t drift_start) {
  const int64_t total = drifted.num_steps();

  std::vector<StreamEvent> quiet =
      StreamRange(d, drifted, 0, drift_start);
  EXPECT_EQ(d.controller->adaptation_rounds(), 0)
      << "adaptation round fired before any drift existed";
  EXPECT_EQ(Count(quiet, StreamEvent::kPromoted), 0);
  EXPECT_EQ(d.registry->current_version(), 1);
  EXPECT_GT(d.controller->evals(), 0) << "incumbent was never shadow-scored";

  std::vector<StreamEvent> noisy = StreamRange(d, drifted, drift_start, total);
  EXPECT_GE(d.controller->adaptation_rounds(), 1)
      << "sustained drift never confirmed";
  EXPECT_EQ(d.controller->adapt_failures(), 0)
      << d.controller->last_adapt_status().ToString();

  // Every round ended in exactly one gate decision, and the registry only
  // moved on wins: version = initial + promotions.
  const PromotionGate& gate = d.controller->gate();
  EXPECT_EQ(gate.promotions() + gate.refusals(),
            d.controller->adaptation_rounds());
  EXPECT_EQ(d.registry->current_version(), 1 + gate.promotions());
  EXPECT_EQ(Count(noisy, StreamEvent::kPromoted), gate.promotions());
  if (gate.promotions() > 0) {
    EXPECT_EQ(d.registry->current()->source, "online-adapt");
  }
  // The decision was made on real scores, not defaults.
  EXPECT_TRUE(std::isfinite(gate.last_decision().candidate_score));
  EXPECT_TRUE(std::isfinite(gate.last_decision().incumbent_score));
}

TEST_F(ScenarioTest, SuddenSensorRecalibrationIsDetectedAndAdapted) {
  Deployment d = MakeDeployment();
  const int64_t drift_start = d.base->num_steps() / 2;
  data::TrafficDataset drifted = data::ApplySensorRecalibration(
      *d.base, drift_start, /*node_fraction=*/0.5, /*gain=*/2.0,
      /*offset=*/5.0, /*seed=*/7);
  RunDriftScenario(d, drifted, drift_start);
}

TEST_F(ScenarioTest, SeasonalShiftIsDetectedAndAdapted) {
  Deployment d = MakeDeployment();
  const int64_t drift_start = d.base->num_steps() / 2;
  data::TrafficDataset drifted = data::ApplySeasonalShift(
      *d.base, drift_start, /*amplitude=*/1.5, /*ramp_steps=*/kStepsPerDay);
  RunDriftScenario(d, drifted, drift_start);
}

TEST_F(ScenarioTest, GrowingCityIsRefusedWithoutCorruptingTheStream) {
  Deployment d = MakeDeployment();
  const int64_t cutover = 3 * (kSteps + kSteps);
  StreamRange(d, *d.base, 0, cutover);
  const int64_t evals_before = d.controller->evals();
  const int64_t next_before = d.controller->ingestor().next_step();

  // The city grew: the feed starts delivering slices with two extra sensors.
  data::TrafficDataset grown = data::AttachNewSensors(*d.base, 2, /*seed=*/9);
  ASSERT_EQ(grown.num_nodes(), kNodes + 2);
  for (int64_t i = cutover; i < cutover + 5; ++i) {
    auto event = d.controller->OnSlice(SliceAt(grown, i), i);
    ASSERT_TRUE(event.ok());
    EXPECT_EQ(event.value(), StreamEvent::kGeometryChange);
  }
  EXPECT_EQ(d.controller->geometry_changes(), 5);

  // A deliberate refusal, not a crash or a silent corruption: no adaptation,
  // no promotion, the ring and clock untouched, and the old-geometry stream
  // resumes exactly where it left off.
  EXPECT_EQ(d.controller->adaptation_rounds(), 0);
  EXPECT_EQ(d.registry->current_version(), 1);
  EXPECT_EQ(d.controller->ingestor().next_step(), next_before);
  EXPECT_EQ(d.controller->ingestor().rejected_geometry(), 0)
      << "geometry events must be pre-checked, not half-appended";
  auto resumed = d.controller->OnSlice(SliceAt(*d.base, cutover), cutover);
  ASSERT_TRUE(resumed.ok());
  EXPECT_NE(resumed.value(), StreamEvent::kGeometryChange);
  EXPECT_GE(d.controller->evals(), evals_before);
}

TEST_F(ScenarioTest, IngestFaultPropagatesWithoutStateDamage) {
  Deployment d = MakeDeployment();
  StreamRange(d, *d.base, 0, 4);
  ASSERT_TRUE(
      core::FailPoint::Set("ingest_append", "error(kUnavailable)@1").ok());
  auto event = d.controller->OnSlice(SliceAt(*d.base, 4), 4);
  EXPECT_EQ(event.status().code(), core::StatusCode::kUnavailable);
  core::FailPoint::ClearAll();
  EXPECT_EQ(d.controller->ingestor().size(), 4);
  EXPECT_TRUE(d.controller->OnSlice(SliceAt(*d.base, 4), 4).ok());
}

// -- The drift transforms themselves ----------------------------------------

TEST_F(DriftTransformTest, RecalibrationIsAffineAfterCutoverOnly) {
  data::TrafficDataset base = data::GenerateSyntheticWorld(WorldConfig());
  const int64_t cut = base.num_steps() / 2;
  data::TrafficDataset drifted =
      data::ApplySensorRecalibration(base, cut, 1.0, 2.0, 5.0, 7);
  ASSERT_EQ(drifted.num_steps(), base.num_steps());
  const float* b = base.signals.data();
  const float* a = drifted.signals.data();
  const int64_t per_step = kNodes * kFeatures;
  for (int64_t i = 0; i < cut * per_step; ++i) {
    ASSERT_EQ(a[i], b[i]) << "pre-cutover data must be untouched";
  }
  for (int64_t i = cut * per_step; i < base.num_steps() * per_step; ++i) {
    ASSERT_FLOAT_EQ(a[i], 2.0f * b[i] + 5.0f);
  }
}

TEST_F(DriftTransformTest, RecalibrationTouchesOnlyTheChosenFraction) {
  data::TrafficDataset base = data::GenerateSyntheticWorld(WorldConfig());
  const int64_t cut = base.num_steps() / 2;
  data::TrafficDataset drifted =
      data::ApplySensorRecalibration(base, cut, 0.5, 3.0, 0.0, 7);
  int64_t changed_nodes = 0;
  for (int64_t v = 0; v < kNodes; ++v) {
    bool changed = false;
    for (int64_t t_i = cut; t_i < base.num_steps(); ++t_i) {
      const int64_t at = (t_i * kNodes + v) * kFeatures;
      if (drifted.signals.data()[at] != base.signals.data()[at]) {
        changed = true;
      }
    }
    changed_nodes += changed ? 1 : 0;
  }
  EXPECT_EQ(changed_nodes, kNodes / 2);
}

TEST_F(DriftTransformTest, SeasonalShiftRampsLinearlyThenHolds) {
  data::TrafficDataset base = data::GenerateSyntheticWorld(WorldConfig());
  const int64_t cut = base.num_steps() / 2;
  const int64_t ramp = kStepsPerDay;
  data::TrafficDataset drifted =
      data::ApplySeasonalShift(base, cut, 1.0, ramp);
  const int64_t per_step = kNodes * kFeatures;
  const float* b = base.signals.data();
  const float* a = drifted.signals.data();
  for (int64_t i = 0; i < cut * per_step; ++i) {
    ASSERT_EQ(a[i], b[i]);
  }
  // Mid-ramp scale is fractional; post-ramp it holds at 1 + amplitude.
  const int64_t mid = cut + ramp / 2 - 1;
  const float mid_expected =
      1.0f + static_cast<float>(ramp / 2) / static_cast<float>(ramp);
  EXPECT_FLOAT_EQ(a[mid * per_step], b[mid * per_step] * mid_expected);
  const int64_t after = cut + 2 * ramp;
  EXPECT_FLOAT_EQ(a[after * per_step], b[after * per_step] * 2.0f);
}

TEST_F(DriftTransformTest, AttachNewSensorsGrowsGraphAndMirrorsDonors) {
  data::TrafficDataset base = data::GenerateSyntheticWorld(WorldConfig());
  data::TrafficDataset grown = data::AttachNewSensors(base, 2, 9);
  ASSERT_EQ(grown.num_nodes(), kNodes + 2);
  ASSERT_EQ(grown.num_steps(), base.num_steps());
  ASSERT_NE(grown.graph, nullptr);
  EXPECT_EQ(grown.graph->num_nodes(), kNodes + 2);
  EXPECT_EQ(grown.graph->edges().size(), base.graph->edges().size() + 2);
  EXPECT_EQ(grown.graph->coords().size(), static_cast<size_t>(kNodes + 2));
  // Original sensors read identically; the transform only adds.
  for (int64_t t_i = 0; t_i < base.num_steps(); ++t_i) {
    for (int64_t v = 0; v < kNodes; ++v) {
      ASSERT_EQ(
          grown.signals.data()[(t_i * (kNodes + 2) + v) * kFeatures],
          base.signals.data()[(t_i * kNodes + v) * kFeatures]);
    }
  }
  // New sensors carry plausible (noisy-copy) traffic, not zeros.
  double new_sum = 0.0;
  for (int64_t t_i = 0; t_i < base.num_steps(); ++t_i) {
    new_sum += grown.signals.data()[(t_i * (kNodes + 2) + kNodes) * kFeatures];
  }
  EXPECT_GT(new_sum, 0.0);
  // Deterministic in the seed.
  data::TrafficDataset again = data::AttachNewSensors(base, 2, 9);
  EXPECT_EQ(0, std::memcmp(grown.signals.data(), again.signals.data(),
                           static_cast<size_t>(grown.signals.size()) *
                               sizeof(float)));
}

}  // namespace
}  // namespace sstban::streaming

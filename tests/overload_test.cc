// Tests for the overload-control subsystem: the adaptive admission
// controller (AIMD limit steering + criticality-ordered shedding), the
// retry/hedge token budget, the windowed service-time estimator behind
// cooperative deadline propagation, the memory brownout ladder (hysteretic
// and reversible), the SSTBAN_ADMISSION / SSTBAN_BROWNOUT_WATERMARKS knobs,
// and the integrated server behavior: eager expired-deadline rejection,
// admission shedding with exact in-flight accounting, and brownout routing
// low-criticality traffic to the fallback tiers and back.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/var_model.h"
#include "core/check.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "serving/overload/admission.h"
#include "serving/overload/brownout.h"
#include "serving/overload/budget.h"
#include "serving/overload/estimator.h"
#include "serving/overload/overload.h"
#include "serving/request_queue.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/model.h"

namespace sstban::serving {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 4;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 12;

// -- AdmissionController -----------------------------------------------------

AdmissionOptions TinyAdmission() {
  AdmissionOptions options;
  options.initial_limit = 10.0;
  options.min_limit = 2.0;
  options.max_limit = 100.0;
  options.tolerance = 2.0;
  options.increase = 1.0;
  options.decrease = 0.5;
  options.min_window = 8;
  return options;
}

TEST(AdmissionControllerTest, LimitClimbsWhileLatencyTracksTheMinimum) {
  AdmissionController admission(TinyAdmission());
  const double before = admission.limit();
  for (int i = 0; i < 5; ++i) admission.OnBatchLatency(0.010);
  EXPECT_GT(admission.limit(), before);
  EXPECT_EQ(admission.TakeSnapshot().backoffs, 0);
}

TEST(AdmissionControllerTest, CongestionBacksOffMultiplicatively) {
  AdmissionController admission(TinyAdmission());
  admission.OnBatchLatency(0.010);  // establishes the moving minimum
  const double before = admission.limit();
  admission.OnBatchLatency(0.050);  // 5x the minimum, tolerance is 2x
  EXPECT_LT(admission.limit(), before);
  EXPECT_NEAR(admission.limit(), before * 0.5, 1e-9);
  EXPECT_EQ(admission.TakeSnapshot().backoffs, 1);
}

TEST(AdmissionControllerTest, LimitNeverDropsBelowTheFloor) {
  AdmissionController admission(TinyAdmission());
  admission.OnBatchLatency(0.010);
  for (int i = 0; i < 50; ++i) admission.OnBatchLatency(0.500);
  EXPECT_GE(admission.limit(), 2.0);
}

TEST(AdmissionControllerTest, WindowRollRebaselinesARegimeChange) {
  AdmissionOptions options = TinyAdmission();
  options.min_window = 4;
  AdmissionController admission(options);
  admission.OnBatchLatency(0.010);
  // A permanent shift to 50ms first reads as congestion...
  for (int i = 0; i < 8; ++i) admission.OnBatchLatency(0.050);
  const auto mid = admission.TakeSnapshot();
  EXPECT_GT(mid.backoffs, 0);
  // ...but once a window containing only 50ms samples rolls, 50ms IS the
  // baseline: no further backoffs and the limit resumes climbing.
  const int64_t backoffs_before = mid.backoffs;
  const double before = admission.limit();
  for (int i = 0; i < 4; ++i) admission.OnBatchLatency(0.050);
  EXPECT_EQ(admission.TakeSnapshot().backoffs, backoffs_before);
  EXPECT_GT(admission.limit(), before);
}

TEST(AdmissionControllerTest, LowerCriticalityClassesShedFirst) {
  AdmissionController admission(TinyAdmission());  // limit 10: caps 10/9/7.5
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(admission.Admit(Criticality::kInteractive));
  }
  EXPECT_FALSE(admission.Admit(Criticality::kWhatIf));  // 8 >= 7.5
  EXPECT_TRUE(admission.Admit(Criticality::kBatch));    // 8 < 9
  EXPECT_FALSE(admission.Admit(Criticality::kBatch));   // 9 >= 9
  EXPECT_TRUE(admission.Admit(Criticality::kInteractive));
  EXPECT_FALSE(admission.Admit(Criticality::kInteractive));  // 10 >= 10

  const auto snap = admission.TakeSnapshot();
  EXPECT_EQ(snap.shed_whatif, 1);
  EXPECT_EQ(snap.shed_batch, 1);
  EXPECT_EQ(snap.shed_interactive, 1);
  EXPECT_EQ(snap.in_flight, 10);
  for (int i = 0; i < 10; ++i) admission.OnTerminal();
  EXPECT_EQ(admission.in_flight(), 0);
  EXPECT_TRUE(admission.Admit(Criticality::kWhatIf));
}

TEST(AdmissionControllerTest, DisabledAdmitsEverythingAndNeverSteers) {
  AdmissionOptions options = TinyAdmission();
  options.enabled = false;
  options.initial_limit = 1.0;
  AdmissionController admission(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.Admit(Criticality::kWhatIf));
  }
  admission.OnBatchLatency(10.0);
  EXPECT_EQ(admission.limit(), 1.0);
  EXPECT_FALSE(admission.TakeSnapshot().enabled);
}

// -- RetryBudget -------------------------------------------------------------

TEST(RetryBudgetTest, ColdStartBurstThenDenies) {
  RetryBudgetOptions options;
  options.ratio = 0.0;
  options.burst = 2.0;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());  // bucket dry, no primaries to refill it
  const auto snap = budget.TakeSnapshot();
  EXPECT_EQ(snap.acquired, 2);
  EXPECT_EQ(snap.denied, 1);
}

TEST(RetryBudgetTest, PrimaryTrafficEarnsTokensUpToBurst) {
  RetryBudgetOptions options;
  options.ratio = 0.5;
  options.burst = 2.0;
  RetryBudget budget(options);
  while (budget.TryAcquire()) {
  }
  budget.OnPrimary();  // +0.5
  EXPECT_FALSE(budget.TryAcquire());
  budget.OnPrimary();  // +0.5 => 1 token
  EXPECT_TRUE(budget.TryAcquire());
  for (int i = 0; i < 100; ++i) budget.OnPrimary();  // capped at burst
  EXPECT_LE(budget.TakeSnapshot().tokens, 2.0);
}

TEST(RetryBudgetTest, DisabledAlwaysGrants) {
  RetryBudgetOptions options;
  options.enabled = false;
  options.burst = 0.0;
  RetryBudget budget(options);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(budget.TryAcquire());
}

// -- ServiceTimeEstimator ----------------------------------------------------

TEST(ServiceTimeEstimatorTest, SilentUntilMinSamples) {
  ServiceTimeEstimator estimator(/*window=*/8, /*min_samples=*/4);
  for (int i = 0; i < 3; ++i) estimator.Record(1.0);
  EXPECT_EQ(estimator.P50(), 0.0);  // under-sampled: deadline gates stay off
  estimator.Record(1.0);
  EXPECT_GT(estimator.P50(), 0.0);
}

TEST(ServiceTimeEstimatorTest, TracksTheRecentMedian) {
  ServiceTimeEstimator estimator(/*window=*/4, /*min_samples=*/1);
  for (int i = 0; i < 4; ++i) estimator.Record(0.010);
  EXPECT_NEAR(estimator.P50(), 0.010, 1e-9);
  // The window slides: four slow samples displace the fast ones entirely.
  for (int i = 0; i < 4; ++i) estimator.Record(0.100);
  EXPECT_NEAR(estimator.P50(), 0.100, 1e-9);
}

// -- BrownoutController ------------------------------------------------------

struct FakeEnvironment {
  std::atomic<int64_t> bytes{0};
  Clock::time_point now = Clock::now();

  BrownoutOptions Options() {
    BrownoutOptions options;
    options.enter_bytes = {1000, 2000, 3000};
    options.exit_fraction = 0.8;
    options.min_dwell = std::chrono::milliseconds(100);
    options.probe = [this] { return bytes.load(); };
    options.now = [this] { return now; };
    return options;
  }
};

TEST(BrownoutControllerTest, EscalatesImmediatelyAndRecoversOneLevelPerDwell) {
  FakeEnvironment env;
  BrownoutController brownout(env.Options());
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kNormal);

  env.bytes = 2500;  // straight past two watermarks
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kFallbackLow);
  EXPECT_EQ(brownout.TakeSnapshot().steps_up, 2);

  // Recovery: footprint fully back down, but de-escalation is gradual —
  // one level per dwell, and never before the dwell elapses.
  env.bytes = 0;
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kFallbackLow);  // dwell not met
  env.now += std::chrono::milliseconds(150);
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kNoHedge);
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kNoHedge);  // next dwell pending
  env.now += std::chrono::milliseconds(150);
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kNormal);  // fully reversible
  const auto snap = brownout.TakeSnapshot();
  EXPECT_EQ(snap.steps_up, 2);
  EXPECT_EQ(snap.steps_down, 2);
}

TEST(BrownoutControllerTest, HysteresisBandHoldsTheLevelAcrossTheWatermark) {
  FakeEnvironment env;
  BrownoutController brownout(env.Options());
  env.bytes = 1100;
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kNoHedge);
  // Dip just below the enter watermark but above exit (0.8 * 1000 = 800):
  // without hysteresis this would flap on every sawtooth allocation.
  env.bytes = 950;
  env.now += std::chrono::milliseconds(500);
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kNoHedge);
  env.bytes = 700;  // below the exit watermark: now it may step down
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kNormal);
}

TEST(BrownoutControllerTest, DisabledStaysNormalAtAnyFootprint) {
  FakeEnvironment env;
  BrownoutOptions options = env.Options();
  options.enabled = false;
  BrownoutController brownout(options);
  env.bytes = int64_t{1} << 40;
  EXPECT_EQ(brownout.Update(), BrownoutLevel::kNormal);
}

// -- Environment knobs -------------------------------------------------------

struct ScopedEnv {
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }
  const char* name_;
};

TEST(OverloadEnvTest, AdmissionKnobsParseAndMalformedKeysAreIgnored) {
  ScopedEnv env("SSTBAN_ADMISSION",
                "limit=32,tolerance=1.5,bogus,min=oops,decrease=0.8");
  OverloadOptions options = ResolveOverloadOptions();
  EXPECT_TRUE(options.admission.enabled);
  EXPECT_EQ(options.admission.initial_limit, 32.0);
  EXPECT_EQ(options.admission.tolerance, 1.5);
  EXPECT_EQ(options.admission.decrease, 0.8);
  EXPECT_EQ(options.admission.min_limit, AdmissionOptions{}.min_limit);
}

TEST(OverloadEnvTest, AdmissionOffDisables) {
  ScopedEnv env("SSTBAN_ADMISSION", "off");
  EXPECT_FALSE(ResolveOverloadOptions().admission.enabled);
}

TEST(OverloadEnvTest, BrownoutWatermarksInMegabytesExtendTheLastValue) {
  {
    ScopedEnv env("SSTBAN_BROWNOUT_WATERMARKS", "100,200,300");
    OverloadOptions options = ResolveOverloadOptions();
    EXPECT_EQ(options.brownout.enter_bytes[0], 100000000);
    EXPECT_EQ(options.brownout.enter_bytes[1], 200000000);
    EXPECT_EQ(options.brownout.enter_bytes[2], 300000000);
  }
  {
    ScopedEnv env("SSTBAN_BROWNOUT_WATERMARKS", "512");
    OverloadOptions options = ResolveOverloadOptions();
    EXPECT_EQ(options.brownout.enter_bytes[0], 512000000);
    EXPECT_EQ(options.brownout.enter_bytes[2], 512000000);
  }
  {
    ScopedEnv env("SSTBAN_BROWNOUT_WATERMARKS", "off");
    EXPECT_FALSE(ResolveOverloadOptions().brownout.enabled);
  }
}

// -- RequestQueue rejection causes -------------------------------------------

TEST(RequestQueueCauseTest, FullClosedAndExpiredAreDistinct) {
  RequestQueue queue(/*capacity=*/1);

  PendingRequest first;
  PushReject cause = PushReject::kNone;
  ASSERT_TRUE(queue.Push(&first, &cause).ok());
  EXPECT_EQ(cause, PushReject::kNone);

  PendingRequest overflow;
  core::Status full = queue.Push(&overflow, &cause);
  EXPECT_EQ(full.code(), core::StatusCode::kUnavailable);
  EXPECT_EQ(cause, PushReject::kFull);
  EXPECT_NE(full.message().find("load shed"), std::string::npos);

  PendingRequest expired;
  expired.request.deadline = Clock::now() - std::chrono::milliseconds(5);
  core::Status late = queue.Push(&expired, &cause);
  EXPECT_EQ(late.code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cause, PushReject::kExpired);

  queue.Close();
  PendingRequest after_close;
  core::Status closed = queue.Push(&after_close, &cause);
  EXPECT_EQ(closed.code(), core::StatusCode::kUnavailable);
  EXPECT_EQ(cause, PushReject::kClosed);
  EXPECT_NE(closed.message().find("shut down"), std::string::npos);

  // The queued item is still poppable: shutdown drains, never drops.
  EXPECT_TRUE(queue.PopBlocking().has_value());
}

// -- Integrated server behavior ----------------------------------------------

std::shared_ptr<data::TrafficDataset> TinyWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 2;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 6;
  config.seed = 77;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig TinyConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.seed = 5;
  return config;
}

ServerOptions TinyServerOptions() {
  ServerOptions options;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = kStepsPerDay;
  options.num_nodes = kNodes;
  options.num_features = kFeatures;
  options.max_batch = 4;
  options.max_wait = std::chrono::milliseconds(2);
  options.queue_capacity = 64;
  return options;
}

// A model whose forward pass blocks until released, to hold admission slots
// open deterministically.
class GateModel : public training::TrafficModel {
 public:
  ag::Variable Predict(const t::Tensor& x_norm,
                       const data::Batch& batch) override {
    (void)batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    return ag::Variable(t::Tensor::Zeros(
        t::Shape{x_norm.dim(0), kSteps, x_norm.dim(2), x_norm.dim(3)}));
  }
  std::string name() const override { return "Gate"; }
  void WaitEntered(int count) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this, count] { return entered_ >= count; });
  }
  void Release() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_, release_cv_;
  int entered_ = 0;
  bool released_ = false;
};

ForecastRequest MakeRequest(const data::TrafficDataset& dataset,
                            int64_t first_step,
                            Criticality criticality = Criticality::kInteractive) {
  ForecastRequest request;
  request.recent = t::Slice(dataset.signals, 0, first_step, kSteps).Clone();
  request.first_step = first_step;
  request.criticality = criticality;
  return request;
}

TEST(ServerOverloadTest, AlreadyExpiredDeadlineIsRejectedAtSubmit) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ForecastServer server(TinyServerOptions(), &registry);
  ASSERT_TRUE(server.Start().ok());

  ForecastRequest request = MakeRequest(*dataset, 0);
  request.deadline = Clock::now() - std::chrono::milliseconds(10);
  auto submitted = server.Submit(std::move(request));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_NE(submitted.status().message().find("expired at submit"),
            std::string::npos);
  // Rejected before it could hold a queue slot or an admission slot.
  EXPECT_EQ(server.overload().admission().in_flight(), 0);
  EXPECT_EQ(server.stats().TakeSnapshot().rejected_deadline, 1);
  server.Shutdown();
}

TEST(ServerOverloadTest, AdmissionShedsAtTheLimitAndAccountingBalances) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  auto gate_owner = std::make_unique<GateModel>();
  GateModel* gate = gate_owner.get();
  ModelRegistry registry([] { return std::make_unique<GateModel>(); }, norm);
  registry.Install(std::move(gate_owner));

  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  options.overload.admission.initial_limit = 4.0;
  options.overload.admission.min_limit = 4.0;
  ForecastServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  std::vector<ForecastFuture> futures;
  for (int i = 0; i < 4; ++i) {
    auto submitted = server.Submit(MakeRequest(*dataset, i));
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted).value());
  }
  gate->WaitEntered(1);  // one in the model, three queued: all hold slots

  auto shed = server.Submit(MakeRequest(*dataset, 5));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), core::StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("admission limit"),
            std::string::npos);
  EXPECT_EQ(server.stats().TakeSnapshot().shed_admission, 1);

  gate->Release();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  server.Shutdown();
  // Exactly one OnTerminal per admitted request: the slot count returns to
  // zero, so the shed was pressure, not a leak.
  EXPECT_EQ(server.overload().admission().in_flight(), 0);
  // And freed slots admit again.
  EXPECT_EQ(server.stats().TakeSnapshot().overload.in_flight, 0);
}

TEST(ServerOverloadTest, BrownoutRoutesLowCriticalityToFallbackThenShedsThenRecovers) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));

  auto pressure = std::make_shared<std::atomic<int64_t>>(0);
  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  options.overload.brownout.enter_bytes = {1000, 2000, 3000};
  options.overload.brownout.min_dwell = std::chrono::milliseconds(0);
  options.overload.brownout.probe = [pressure] { return pressure->load(); };
  ForecastServer server(options, &registry);
  auto var = std::make_unique<baselines::VarModel>(3);
  var->FitSeries(norm.Transform(dataset->signals));
  server.SetVarBaseline(std::move(var));
  ASSERT_TRUE(server.Start().ok());

  auto serve = [&](Criticality criticality) -> ForecastResult {
    auto submitted = server.Submit(MakeRequest(*dataset, 0, criticality));
    if (!submitted.ok()) return ForecastResult(submitted.status());
    return submitted.value().get();
  };

  // Normal: batch traffic gets the model.
  ForecastResult calm = serve(Criticality::kBatch);
  ASSERT_TRUE(calm.ok());
  EXPECT_EQ(calm.value().served_by, ServedBy::kModel);

  // kFallbackLow: batch skips the primary and serves from the VAR tier;
  // interactive keeps the model.
  pressure->store(2500);
  ForecastResult browned = serve(Criticality::kBatch);
  ASSERT_TRUE(browned.ok());
  EXPECT_EQ(browned.value().served_by, ServedBy::kVarBaseline);
  ForecastResult vip = serve(Criticality::kInteractive);
  ASSERT_TRUE(vip.ok());
  EXPECT_EQ(vip.value().served_by, ServedBy::kModel);

  // kShedLow: batch is refused outright, interactive still served.
  pressure->store(3500);
  ForecastResult shed = serve(Criticality::kWhatIf);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), core::StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("brownout"), std::string::npos);
  ForecastResult vip2 = serve(Criticality::kInteractive);
  ASSERT_TRUE(vip2.ok());
  EXPECT_EQ(vip2.value().served_by, ServedBy::kModel);

  // Pressure gone: the ladder steps back down (batcher ticks Update too) and
  // batch traffic returns to the model — brownout is fully reversible.
  pressure->store(0);
  ForecastResult recovered = ForecastResult(core::Status::Unavailable(""));
  for (int attempt = 0; attempt < 50; ++attempt) {
    recovered = serve(Criticality::kBatch);
    if (recovered.ok() && recovered.value().served_by == ServedBy::kModel) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().served_by, ServedBy::kModel);

  const auto snap = server.stats().TakeSnapshot();
  EXPECT_GE(snap.forced_fallback, 1);
  EXPECT_GE(snap.shed_brownout, 1);
  EXPECT_GE(snap.overload.brownout_steps_up, 2);
  EXPECT_GE(snap.overload.brownout_steps_down, 3);
  EXPECT_EQ(snap.overload.brownout_level, "normal");
  server.Shutdown();
  EXPECT_EQ(server.overload().admission().in_flight(), 0);
}

TEST(ServerOverloadTest, StatsReportsCarryTheOverloadBlock) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ForecastServer server(TinyServerOptions(), &registry);
  ASSERT_TRUE(server.Start().ok());
  auto submitted = server.Submit(MakeRequest(*dataset, 0));
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(submitted.value().get().ok());
  server.Shutdown();

  const std::string table = server.stats().ReportTable();
  EXPECT_NE(table.find("overload"), std::string::npos);
  EXPECT_NE(table.find("brownout"), std::string::npos);
  EXPECT_NE(table.find("shutdown="), std::string::npos);
  const std::string json = server.stats().ReportJson();
  EXPECT_NE(json.find("\"overload\""), std::string::npos);
  EXPECT_NE(json.find("\"admission_enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"rejected_shutdown\""), std::string::npos);
}

}  // namespace
}  // namespace sstban::serving

// Tests for the corridor-aware spatial partitioner: balanced shard sizes,
// cut quality never worse than naive striping, exact sensor cover,
// deterministic plans, and halo/view index-map consistency.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/traffic_graph.h"
#include "sharding/partitioner.h"

namespace sstban::sharding {
namespace {

graph::TrafficGraph CorridorGraph(int64_t nodes, int corridors,
                                  uint64_t seed) {
  core::Rng rng(seed);
  return graph::TrafficGraph::RandomCorridor(nodes, corridors, rng);
}

TEST(PartitionTest, EverySensorOwnedByExactlyOneShard) {
  graph::TrafficGraph graph = CorridorGraph(41, 3, 9);
  PartitionOptions options;
  options.num_shards = 4;
  auto plan_or = PartitionGraph(graph, options);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  const ShardPlan& plan = plan_or.value();

  std::vector<int> seen(graph.num_nodes(), 0);
  for (const ShardSpec& shard : plan.shards) {
    for (int64_t v : shard.owned) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, graph.num_nodes());
      ++seen[v];
      EXPECT_EQ(plan.shard_of[v], shard.shard_id);
    }
  }
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_EQ(seen[v], 1) << "sensor " << v;
  }
}

TEST(PartitionTest, ShardSizesAreBalancedWithinOne) {
  for (int64_t k : {2, 3, 4, 5, 7}) {
    graph::TrafficGraph graph = CorridorGraph(53, 4, 11);
    PartitionOptions options;
    options.num_shards = k;
    auto plan_or = PartitionGraph(graph, options);
    ASSERT_TRUE(plan_or.ok());
    int64_t smallest = graph.num_nodes(), largest = 0;
    for (const ShardSpec& shard : plan_or.value().shards) {
      smallest = std::min<int64_t>(smallest,
                                   static_cast<int64_t>(shard.owned.size()));
      largest = std::max<int64_t>(largest,
                                  static_cast<int64_t>(shard.owned.size()));
    }
    EXPECT_LE(largest - smallest, 1) << "K=" << k;
  }
}

TEST(PartitionTest, CutNeverWorseThanNaiveStriping) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    graph::TrafficGraph graph = CorridorGraph(60, 3, seed);
    PartitionOptions options;
    options.num_shards = 4;
    options.seed = seed;
    auto corridor = PartitionGraph(graph, options);
    auto striped = StripePartition(graph, options);
    ASSERT_TRUE(corridor.ok());
    ASSERT_TRUE(striped.ok());
    EXPECT_LE(corridor.value().cross_shard_edges,
              striped.value().cross_shard_edges)
        << "seed " << seed;
    EXPECT_EQ(corridor.value().total_edges,
              static_cast<int64_t>(graph.edges().size()));
  }
}

TEST(PartitionTest, SameSeedYieldsIdenticalPlan) {
  graph::TrafficGraph graph = CorridorGraph(48, 3, 5);
  PartitionOptions options;
  options.num_shards = 5;
  options.seed = 1234;
  options.halo_hops = 1;
  auto a = PartitionGraph(graph, options);
  auto b = PartitionGraph(graph, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().shard_of, b.value().shard_of);
  EXPECT_EQ(a.value().cross_shard_edges, b.value().cross_shard_edges);
  for (int64_t s = 0; s < options.num_shards; ++s) {
    EXPECT_EQ(a.value().shards[s].owned, b.value().shards[s].owned);
    EXPECT_EQ(a.value().shards[s].halo, b.value().shards[s].halo);
    EXPECT_EQ(a.value().shards[s].view, b.value().shards[s].view);
  }
}

TEST(PartitionTest, ViewIndexMapsAreConsistent) {
  graph::TrafficGraph graph = CorridorGraph(36, 2, 3);
  PartitionOptions options;
  options.num_shards = 3;
  options.halo_hops = 1;
  auto plan_or = PartitionGraph(graph, options);
  ASSERT_TRUE(plan_or.ok());
  for (const ShardSpec& shard : plan_or.value().shards) {
    // View is sorted, unique, and the disjoint union of owned and halo.
    EXPECT_TRUE(std::is_sorted(shard.view.begin(), shard.view.end()));
    EXPECT_EQ(shard.view.size(), shard.owned.size() + shard.halo.size());
    std::set<int64_t> view_set(shard.view.begin(), shard.view.end());
    EXPECT_EQ(view_set.size(), shard.view.size());
    for (int64_t v : shard.owned) EXPECT_TRUE(view_set.count(v));
    for (int64_t v : shard.halo) EXPECT_TRUE(view_set.count(v));
    // view_local_of inverts view; owned_view_index points at owned rows.
    for (size_t i = 0; i < shard.view.size(); ++i) {
      EXPECT_EQ(shard.view_local_of[shard.view[i]],
                static_cast<int64_t>(i));
    }
    ASSERT_EQ(shard.owned_view_index.size(), shard.owned.size());
    for (size_t i = 0; i < shard.owned.size(); ++i) {
      EXPECT_EQ(shard.view[shard.owned_view_index[i]], shard.owned[i]);
    }
  }
}

TEST(PartitionTest, HaloIsWithinRequestedHops) {
  graph::TrafficGraph graph = CorridorGraph(30, 2, 13);
  PartitionOptions options;
  options.num_shards = 3;
  options.halo_hops = 1;
  auto plan_or = PartitionGraph(graph, options);
  ASSERT_TRUE(plan_or.ok());
  for (const ShardSpec& shard : plan_or.value().shards) {
    std::set<int64_t> owned(shard.owned.begin(), shard.owned.end());
    for (int64_t h : shard.halo) {
      EXPECT_FALSE(owned.count(h)) << "halo overlaps owned at " << h;
      // 1-hop halo: adjacent (either direction) to some owned sensor.
      bool adjacent = false;
      for (int64_t v : graph.Successors(h)) adjacent |= owned.count(v) > 0;
      for (int64_t v : graph.Predecessors(h)) adjacent |= owned.count(v) > 0;
      EXPECT_TRUE(adjacent) << "halo sensor " << h << " not on the boundary";
    }
  }
}

TEST(PartitionTest, ZeroHaloMeansViewEqualsOwned) {
  graph::TrafficGraph graph = CorridorGraph(24, 2, 2);
  PartitionOptions options;
  options.num_shards = 4;
  options.halo_hops = 0;
  auto plan_or = PartitionGraph(graph, options);
  ASSERT_TRUE(plan_or.ok());
  for (const ShardSpec& shard : plan_or.value().shards) {
    EXPECT_TRUE(shard.halo.empty());
    EXPECT_EQ(shard.view, shard.owned);
  }
}

TEST(PartitionTest, StripePartitionUsesContiguousRanges) {
  graph::TrafficGraph graph = CorridorGraph(26, 2, 4);
  PartitionOptions options;
  options.num_shards = 4;
  auto plan_or = StripePartition(graph, options);
  ASSERT_TRUE(plan_or.ok());
  const std::vector<int64_t>& shard_of = plan_or.value().shard_of;
  for (size_t v = 1; v < shard_of.size(); ++v) {
    EXPECT_GE(shard_of[v], shard_of[v - 1]);  // monotone = contiguous ids
  }
}

TEST(PartitionTest, InvalidOptionsAreRejected) {
  graph::TrafficGraph graph = CorridorGraph(10, 1, 1);
  PartitionOptions options;
  options.num_shards = 0;
  EXPECT_EQ(PartitionGraph(graph, options).status().code(),
            core::StatusCode::kInvalidArgument);
  options.num_shards = 11;  // more shards than sensors
  EXPECT_EQ(PartitionGraph(graph, options).status().code(),
            core::StatusCode::kInvalidArgument);
  options.num_shards = 2;
  options.halo_hops = -1;
  EXPECT_EQ(PartitionGraph(graph, options).status().code(),
            core::StatusCode::kInvalidArgument);
}

TEST(PartitionTest, SingleShardOwnsEverything) {
  graph::TrafficGraph graph = CorridorGraph(15, 1, 8);
  PartitionOptions options;
  options.num_shards = 1;
  auto plan_or = PartitionGraph(graph, options);
  ASSERT_TRUE(plan_or.ok());
  EXPECT_EQ(plan_or.value().shards[0].owned.size(), 15u);
  EXPECT_EQ(plan_or.value().cross_shard_edges, 0);
  EXPECT_NE(plan_or.value().Summary().find("K=1"), std::string::npos);
}

}  // namespace
}  // namespace sstban::sharding

// Tests for the serving resilience layer: input sanitization and mask-aware
// degraded inference, the circuit-breaker state machine, the
// SSTBAN -> VAR -> last-known-good fallback chain, watchdog/health probes,
// and the chaos invariant — under every fault schedule, every request
// reaches exactly one terminal status and the server never aborts or
// wedges. The CI chaos matrix additionally runs this whole binary under
// several SSTBAN_FAILPOINTS environment schedules.

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/var_model.h"
#include "core/check.h"
#include "core/failpoint.h"
#include "core/rng.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "serving/circuit_breaker.h"
#include "serving/fallback.h"
#include "serving/forecast_server.h"
#include "serving/health.h"
#include "serving/model_registry.h"
#include "serving/sanitizer.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/forecast_service.h"

namespace sstban::serving {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 4;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 12;
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

std::shared_ptr<data::TrafficDataset> TinyWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 2;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 6;
  config.seed = 77;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig TinyConfig(uint64_t seed = 5) {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.seed = seed;
  return config;
}

ServerOptions TinyServerOptions() {
  ServerOptions options;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = kStepsPerDay;
  options.num_nodes = kNodes;
  options.num_features = kFeatures;
  options.max_batch = 4;
  options.max_wait = std::chrono::milliseconds(5);
  options.queue_capacity = 64;
  options.sanitizer.degradable_channels = {0};
  return options;
}

// Arms a comma-separated failpoint schedule for the test's scope and
// guarantees nothing stays armed afterwards (failpoints are process-global).
struct ScopedFailpoints {
  explicit ScopedFailpoints(const std::string& list) {
    if (!list.empty()) {
      SSTBAN_CHECK(core::FailPoint::SetFromList(list).ok()) << list;
    }
  }
  ~ScopedFailpoints() { core::FailPoint::ClearAll(); }
};

std::unique_ptr<baselines::VarModel> FittedVar(
    const data::TrafficDataset& dataset, const data::Normalizer& norm) {
  auto var = std::make_unique<baselines::VarModel>(3);
  var->FitSeries(norm.Transform(dataset.signals));
  return var;
}

// A model whose forward pass always throws — the "model crashed" chaos case
// the batcher must absorb (std::exception, not process death).
class ThrowingModel : public training::TrafficModel {
 public:
  ag::Variable Predict(const t::Tensor&, const data::Batch&) override {
    throw std::runtime_error("synthetic model crash");
  }
  std::string name() const override { return "Throwing"; }
};

// A model whose forward pass blocks until released (for wedge testing).
class GateModel : public training::TrafficModel {
 public:
  ag::Variable Predict(const t::Tensor& x_norm,
                       const data::Batch& batch) override {
    (void)batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    return ag::Variable(t::Tensor::Zeros(
        t::Shape{x_norm.dim(0), kSteps, x_norm.dim(2), x_norm.dim(3)}));
  }
  std::string name() const override { return "Gate"; }
  void WaitEntered(int count) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this, count] { return entered_ >= count; });
  }
  void Release() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_, release_cv_;
  int entered_ = 0;
  bool released_ = false;
};

// -- InputSanitizer ----------------------------------------------------------

TEST(SanitizerTest, CleanWindowIsUntouchedAndUnmasked) {
  t::Tensor window = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  const float* before = window.data();
  InputSanitizer sanitizer(SanitizerOptions{});
  auto result = sanitizer.Sanitize(&window);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().clean());
  EXPECT_FALSE(result.value().keep_pos.defined());
  EXPECT_EQ(window.data(), before);  // no clone on the clean hot path
}

TEST(SanitizerTest, StrictChannelNaNIsRejectedWithLocation) {
  t::Tensor window = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  window.data()[(2 * kNodes + 1) * kFeatures] = kNaN;
  InputSanitizer sanitizer(SanitizerOptions{});  // strict everywhere
  auto result = sanitizer.Sanitize(&window);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("step 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("sensor 1"), std::string::npos);
}

TEST(SanitizerTest, DegradableNaNIsMaskedScrubbedAndClientBufferPreserved) {
  t::Tensor client = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  client.data()[(3 * kNodes + 2) * kFeatures] = kNaN;
  t::Tensor window = client;  // shares storage, like Submit's by-value copy

  SanitizerOptions options;
  options.degradable_channels = {0};
  InputSanitizer sanitizer(options);
  auto result = sanitizer.Sanitize(&window);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().masked_positions, 1);
  EXPECT_EQ(result.value().total_positions, kSteps * kNodes);
  ASSERT_TRUE(result.value().keep_pos.defined());
  EXPECT_EQ(result.value().keep_pos.dim(0), kSteps);
  EXPECT_EQ(result.value().keep_pos.dim(1), kNodes);
  EXPECT_EQ(result.value().keep_pos.data()[3 * kNodes + 2], 0.0f);
  // The request's window was re-pointed at a scrubbed clone...
  EXPECT_NE(window.data(), client.data());
  EXPECT_EQ(window.data()[(3 * kNodes + 2) * kFeatures], 0.0f);
  EXPECT_FALSE(t::HasNonFinite(window));
  // ...while the client's buffer still holds the NaN it sent.
  EXPECT_TRUE(std::isnan(client.data()[(3 * kNodes + 2) * kFeatures]));
}

TEST(SanitizerTest, SentinelValueCountsAsMissing) {
  t::Tensor window = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  window.data()[0] = -1.0f;
  SanitizerOptions options;
  options.degradable_channels = {0};
  options.missing_sentinel = -1.0f;
  auto result = InputSanitizer(options).Sanitize(&window);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().masked_positions, 1);
  EXPECT_EQ(result.value().keep_pos.data()[0], 0.0f);
  EXPECT_EQ(window.data()[0], 0.0f);
}

TEST(SanitizerTest, FullyMaskedWindowIsRejected) {
  t::Tensor window = t::Tensor::Full(t::Shape{kSteps, kNodes, kFeatures}, kNaN);
  SanitizerOptions options;
  options.degradable_channels = {0};
  auto result = InputSanitizer(options).Sanitize(&window);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
}

// -- CircuitBreaker (fake clock: no sleeping, fully deterministic) -----------

struct FakeClock {
  Clock::time_point now = Clock::now();
  CircuitBreaker::NowFn fn() {
    return [this] { return now; };
  }
  void Advance(std::chrono::milliseconds d) { now += d; }
};

CircuitBreakerOptions SmallBreaker() {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_samples = 2;
  options.error_rate_threshold = 0.5;
  options.cooldown = std::chrono::milliseconds(100);
  options.max_cooldown = std::chrono::milliseconds(1000);
  options.probe_successes_to_close = 2;
  return options;
}

TEST(CircuitBreakerTest, TripsOnErrorRateAndShedsLoad) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);  // min_samples
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().trips, 1);
  EXPECT_EQ(breaker.stats().rejected, 1);
}

TEST(CircuitBreakerTest, HalfOpenProbesCloseAfterSuccesses) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  breaker.Allow();
  breaker.RecordFailure();
  breaker.Allow();
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock.Advance(std::chrono::milliseconds(101));
  ASSERT_TRUE(breaker.Allow());  // first probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.Allow());   // second probe (limit = successes_to_close)
  EXPECT_FALSE(breaker.Allow());  // no more concurrent probes
  breaker.RecordSuccess(0.001);
  breaker.RecordSuccess(0.001);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().probes, 2);
  EXPECT_EQ(breaker.stats().consecutive_trips, 0);  // backoff reset
}

TEST(CircuitBreakerTest, FailedProbeReopensWithExponentialBackoff) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  breaker.Allow();
  breaker.RecordFailure();
  breaker.Allow();
  breaker.RecordFailure();  // trip 1: cooldown 100ms

  clock.Advance(std::chrono::milliseconds(101));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // failed probe -> trip 2: cooldown 200ms
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2);

  clock.Advance(std::chrono::milliseconds(101));
  EXPECT_FALSE(breaker.Allow());  // 100ms is no longer enough
  clock.Advance(std::chrono::milliseconds(100));
  EXPECT_TRUE(breaker.Allow());  // 201ms total: doubled cooldown expired
}

TEST(CircuitBreakerTest, LatencyQuantileTripsWithoutErrors) {
  FakeClock clock;
  CircuitBreakerOptions options = SmallBreaker();
  options.latency_threshold_seconds = 0.5;
  options.latency_quantile = 0.5;
  CircuitBreaker breaker(options, clock.fn());
  breaker.Allow();
  breaker.RecordSuccess(2.0);
  breaker.Allow();
  breaker.RecordSuccess(3.0);  // p50 of {2, 3} >> 0.5s
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1);
}

TEST(CircuitBreakerTest, ModelSwapResetsToClosed) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  breaker.Allow();
  breaker.RecordFailure();
  breaker.Allow();
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  breaker.OnModelSwapped();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.stats().consecutive_trips, 0);
}

// -- LastGoodCache and FallbackChain -----------------------------------------

TEST(LastGoodCacheTest, PersistenceSkipsNonFiniteReadings) {
  LastGoodCache cache;
  t::Tensor recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  float* data = recent.data();
  // Sensor 0: last reading NaN, previous one 7 -> persistence forecasts 7.
  data[(kSteps - 1) * kNodes * kFeatures] = kNaN;
  data[(kSteps - 2) * kNodes * kFeatures] = 7.0f;
  t::Tensor out = cache.Assemble(recent, kSteps);
  ASSERT_EQ(out.dim(0), kSteps);
  for (int64_t q = 0; q < kSteps; ++q) {
    EXPECT_FLOAT_EQ(out.data()[q * kNodes * kFeatures], 7.0f);
    EXPECT_FLOAT_EQ(out.data()[q * kNodes * kFeatures + 1], 1.0f);
  }
  EXPECT_EQ(cache.cached_sensors(), 0);
}

TEST(LastGoodCacheTest, ServesCachedForecastWhenGeometryMatches) {
  LastGoodCache cache;
  t::Tensor forecast = t::Tensor::Full(t::Shape{kSteps, kNodes, kFeatures}, 3.5f);
  cache.Update(forecast);
  EXPECT_EQ(cache.cached_sensors(), kNodes);
  t::Tensor recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  t::Tensor out = cache.Assemble(recent, kSteps);
  EXPECT_EQ(0, std::memcmp(out.data(), forecast.data(),
                           sizeof(float) * kSteps * kNodes * kFeatures));
}

TEST(LastGoodCacheTest, RefusesEntriesOlderThanMaxAge) {
  LastGoodCache cache;
  t::Tensor forecast = t::Tensor::Full(t::Shape{kSteps, kNodes, kFeatures}, 3.5f);
  cache.Update(forecast, /*logical_step=*/100);
  EXPECT_EQ(cache.cached_step(), 100);
  t::Tensor recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});

  // Fresh enough: the cached column answers and reports its age.
  int64_t age = -2;
  t::Tensor out = cache.Assemble(recent, kSteps, /*now_step=*/104,
                                 /*max_age_steps=*/8, &age);
  EXPECT_EQ(age, 4);
  EXPECT_FLOAT_EQ(out.data()[0], 3.5f);

  // Beyond the horizon: refused; persistence (the all-ones window) answers
  // and the age annotation stays -1.
  out = cache.Assemble(recent, kSteps, /*now_step=*/200, /*max_age_steps=*/8,
                       &age);
  EXPECT_EQ(age, -1);
  EXPECT_FLOAT_EQ(out.data()[0], 1.0f);

  // Unbounded horizon (the default) keeps the pre-staleness behavior.
  out = cache.Assemble(recent, kSteps, /*now_step=*/200, /*max_age_steps=*/-1,
                       &age);
  EXPECT_EQ(age, 100);
  EXPECT_FLOAT_EQ(out.data()[0], 3.5f);
}

TEST(FallbackChainTest, CacheTierReportsAgeAndHonorsStalenessBound) {
  auto dataset = TinyWorld();
  FallbackOptions options;
  options.max_cache_age_steps = 8;
  FallbackChain chain(options);  // no VAR baseline -> cache tier answers
  t::Tensor forecast = t::Tensor::Full(t::Shape{kSteps, kNodes, kFeatures}, 2.0f);
  chain.cache().Update(forecast, /*logical_step=*/50);

  data::Batch batch;
  batch.x = t::Tensor::Ones(t::Shape{2, kSteps, kNodes, kFeatures});
  batch.y = t::Tensor::Zeros(t::Shape{2, kSteps, kNodes, kFeatures});
  std::vector<t::Tensor> slices;
  std::vector<int64_t> ages;
  ServedBy served_by = ServedBy::kModel;
  // First request is 3 steps after the cached forecast, second is 30: the
  // first gets the cached column (age 3), the second falls to persistence.
  ASSERT_TRUE(chain.Run(batch, nullptr, kSteps, {53, 80}, &slices, &served_by,
                        &ages)
                  .ok());
  EXPECT_EQ(served_by, ServedBy::kCache);
  ASSERT_EQ(ages.size(), 2u);
  EXPECT_EQ(ages[0], 3);
  EXPECT_EQ(ages[1], -1);
  EXPECT_FLOAT_EQ(slices[0].data()[0], 2.0f);
  EXPECT_FLOAT_EQ(slices[1].data()[0], 1.0f);
}

TEST(FallbackChainTest, VarTierAnswersWhenFitted) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  FallbackChain chain((FallbackOptions()));
  chain.SetVarBaseline(FittedVar(*dataset, norm));

  data::Batch batch;
  batch.x = t::Slice(dataset->signals, 0, 0, kSteps)
                .Reshape(t::Shape{1, kSteps, kNodes, kFeatures});
  training::AppendCalendarFeatures(0, kSteps, kSteps, kStepsPerDay, &batch);
  batch.y = t::Tensor::Zeros(t::Shape{1, kSteps, kNodes, kFeatures});

  std::vector<t::Tensor> slices;
  ServedBy served_by = ServedBy::kModel;
  ASSERT_TRUE(chain.Run(batch, &norm, kSteps, {}, &slices, &served_by).ok());
  EXPECT_EQ(served_by, ServedBy::kVarBaseline);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_FALSE(t::HasNonFinite(slices[0]));
}

TEST(FallbackChainTest, CacheTierAnswersWithoutVarOrNormalizer) {
  auto dataset = TinyWorld();
  FallbackChain chain((FallbackOptions()));  // no VAR baseline
  data::Batch batch;
  batch.x = t::Slice(dataset->signals, 0, 0, kSteps)
                .Reshape(t::Shape{1, kSteps, kNodes, kFeatures});
  batch.y = t::Tensor::Zeros(t::Shape{1, kSteps, kNodes, kFeatures});
  std::vector<t::Tensor> slices;
  ServedBy served_by = ServedBy::kModel;
  ASSERT_TRUE(chain.Run(batch, nullptr, kSteps, {}, &slices, &served_by).ok());
  EXPECT_EQ(served_by, ServedBy::kCache);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_FALSE(t::HasNonFinite(slices[0]));
}

TEST(FallbackChainTest, InjectedFallbackFaultPropagates) {
  ScopedFailpoints fp("serve_fallback=error(Unavailable)");
  FallbackChain chain((FallbackOptions()));
  data::Batch batch;
  batch.x = t::Tensor::Ones(t::Shape{1, kSteps, kNodes, kFeatures});
  std::vector<t::Tensor> slices;
  ServedBy served_by = ServedBy::kModel;
  core::Status status =
      chain.Run(batch, nullptr, kSteps, {}, &slices, &served_by);
  EXPECT_EQ(status.code(), core::StatusCode::kUnavailable);
}

// -- Degraded-mode serving: bitwise-pinned against the direct model call -----

TEST(DegradedInferenceTest, ServerMatchesDirectMaskedCallBitwise) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();

  // The request: a real window with two sensor dropouts on channel 0.
  const int64_t first_step = 9;
  t::Tensor window = t::Slice(dataset->signals, 0, first_step, kSteps).Clone();
  window.data()[(1 * kNodes + 0) * kFeatures] = kNaN;
  window.data()[(4 * kNodes + 3) * kFeatures] = kNaN;

  // Direct path: sanitize a copy, then call the shared masked-inference
  // helper exactly as the batcher would for a batch of one.
  SanitizerOptions san_options;
  san_options.degradable_channels = {0};
  t::Tensor direct_window = window.Clone();
  auto sanitized = InputSanitizer(san_options).Sanitize(&direct_window);
  ASSERT_TRUE(sanitized.ok());
  ASSERT_EQ(sanitized.value().masked_positions, 2);

  model_ns::SstbanModel direct_model(config);
  data::Batch batch;
  batch.x = direct_window.Reshape(t::Shape{1, kSteps, kNodes, kFeatures});
  training::AppendCalendarFeatures(first_step, kSteps, kSteps, kStepsPerDay,
                                   &batch);
  batch.y = t::Tensor::Zeros(t::Shape{1, kSteps, kNodes, kFeatures});
  auto expected_or = training::RunBatchedInferenceMasked(
      &direct_model, norm, batch,
      sanitized.value().keep_pos.Reshape(t::Shape{1, kSteps, kNodes}));
  ASSERT_TRUE(expected_or.ok()) << expected_or.status().ToString();
  t::Tensor expected = std::move(expected_or).value();

  // Server path: same seed => bit-identical weights; batch of one.
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  ForecastServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  ForecastRequest request;
  request.recent = window;
  request.first_step = first_step;
  auto submitted = server.Submit(std::move(request));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ForecastResult result = submitted.value().get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  server.Shutdown();

  EXPECT_EQ(result.value().degradation, DegradationLevel::kPartial);
  EXPECT_EQ(result.value().served_by, ServedBy::kModel);
  EXPECT_EQ(result.value().masked_positions, 2);
  ASSERT_EQ(result.value().forecast.size(), expected.size());
  // Bitwise: the server's degraded answer IS the direct masked call.
  EXPECT_EQ(0, std::memcmp(result.value().forecast.data(), expected.data(),
                           sizeof(float) * expected.size()));

  auto snap = server.stats().TakeSnapshot();
  EXPECT_EQ(snap.degraded_partial, 1);
  EXPECT_EQ(snap.served_model, 1);
}

TEST(DegradedInferenceTest, HeavyMaskFractionAnnotatesHeavy) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ForecastServer server(TinyServerOptions(), &registry);
  ASSERT_TRUE(server.Start().ok());

  // Mask 10 of 24 positions (> 30% heavy threshold).
  t::Tensor window = t::Slice(dataset->signals, 0, 0, kSteps).Clone();
  for (int64_t i = 0; i < 10; ++i) window.data()[i * kFeatures] = kNaN;
  ForecastRequest request;
  request.recent = window;
  auto submitted = server.Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());
  ForecastResult result = submitted.value().get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().degradation, DegradationLevel::kHeavy);
  EXPECT_EQ(result.value().masked_positions, 10);
  EXPECT_TRUE(result.value().degraded());
  server.Shutdown();
  EXPECT_EQ(server.stats().TakeSnapshot().degraded_heavy, 1);
}

TEST(DegradedInferenceTest, StrictServerRejectsNonFiniteAtSubmit) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ServerOptions options = TinyServerOptions();
  options.sanitizer.degradable_channels.clear();  // strict everywhere
  ForecastServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  t::Tensor window = t::Slice(dataset->signals, 0, 0, kSteps).Clone();
  window.data()[5] = kNaN;
  ForecastRequest request;
  request.recent = window;
  auto submitted = server.Submit(std::move(request));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), core::StatusCode::kInvalidArgument);
  server.Shutdown();
  auto snap = server.stats().TakeSnapshot();
  EXPECT_EQ(snap.rejected_nonfinite, 1);
  EXPECT_EQ(snap.rejected_invalid, 1);
}

// -- Fallback through the full server ----------------------------------------

TEST(ServerFallbackTest, ThrowingModelIsAbsorbedAndBreakerTrips) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  ModelRegistry registry([] { return std::make_unique<ThrowingModel>(); },
                         norm);
  registry.Install(std::make_unique<ThrowingModel>());

  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  options.fallback.primary_breaker.window = 4;
  options.fallback.primary_breaker.min_samples = 2;
  options.fallback.primary_breaker.cooldown = std::chrono::seconds(30);
  ForecastServer server(options, &registry);
  server.SetVarBaseline(FittedVar(*dataset, norm));
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 6; ++i) {
    ForecastRequest request;
    request.recent = t::Slice(dataset->signals, 0, i, kSteps);
    request.first_step = i;
    auto submitted = server.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    ForecastResult result = submitted.value().get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().served_by, ServedBy::kVarBaseline);
    EXPECT_TRUE(result.value().degraded());
    EXPECT_EQ(result.value().model_version, 0);
    EXPECT_FALSE(t::HasNonFinite(result.value().forecast));
  }
  server.Shutdown();

  auto snap = server.stats().TakeSnapshot();
  EXPECT_EQ(snap.served_var, 6);
  EXPECT_EQ(snap.served_model, 0);
  EXPECT_GE(snap.resilience.primary_trips, 1);
  EXPECT_EQ(snap.resilience.primary_breaker_state, "open");
  EXPECT_TRUE(snap.resilience.var_available);
}

TEST(ServerFallbackTest, DisabledChainTurnsModelFaultsIntoUnavailable) {
  ScopedFailpoints fp("serve_batch_run=error(Internal)");
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ServerOptions options = TinyServerOptions();
  options.fallback.enabled = false;
  ForecastServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  ForecastRequest request;
  request.recent = t::Slice(dataset->signals, 0, 0, kSteps);
  auto submitted = server.Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());
  ForecastResult result = submitted.value().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kUnavailable);
  server.Shutdown();
}

TEST(ServerFallbackTest, CacheTierReplaysLastGoodForecast) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  ForecastServer server(options, &registry);  // no VAR: cache is tier 2
  ASSERT_TRUE(server.Start().ok());

  // First request succeeds on the model and warms the cache.
  ForecastRequest healthy;
  healthy.recent = t::Slice(dataset->signals, 0, 0, kSteps);
  auto first = server.Submit(std::move(healthy));
  ASSERT_TRUE(first.ok());
  ForecastResult first_result = first.value().get();
  ASSERT_TRUE(first_result.ok());
  ASSERT_EQ(first_result.value().served_by, ServedBy::kModel);

  // Then the model "breaks" (injected): the cached forecast answers.
  {
    ScopedFailpoints fp("serve_batch_run=error(Internal)");
    ForecastRequest during_outage;
    during_outage.recent = t::Slice(dataset->signals, 0, 3, kSteps);
    during_outage.first_step = 3;
    auto second = server.Submit(std::move(during_outage));
    ASSERT_TRUE(second.ok());
    ForecastResult second_result = second.value().get();
    ASSERT_TRUE(second_result.ok()) << second_result.status().ToString();
    EXPECT_EQ(second_result.value().served_by, ServedBy::kCache);
    EXPECT_EQ(0,
              std::memcmp(second_result.value().forecast.data(),
                          first_result.value().forecast.data(),
                          sizeof(float) * first_result.value().forecast.size()));
  }
  server.Shutdown();
  EXPECT_EQ(server.stats().TakeSnapshot().served_cache, 1);
}

// -- Watchdog and health probes ----------------------------------------------

TEST(HealthTest, ReadyServerReportsReady) {
  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  ForecastServer server(TinyServerOptions(), &registry);
  ASSERT_TRUE(server.Start().ok());
  HealthReport report = server.CheckHealth();
  EXPECT_TRUE(report.live);
  EXPECT_TRUE(report.ready);
  EXPECT_FALSE(report.wedged);
  EXPECT_EQ(report.model_version, 1);
  EXPECT_NE(report.ToString().find("READY"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"ready\": true"), std::string::npos);
  server.Shutdown();
  report = server.CheckHealth();
  EXPECT_FALSE(report.live);
  EXPECT_FALSE(report.ready);
}

TEST(HealthTest, WedgedBatcherFailsFastAndReportsNotReady) {
  core::Rng rng(4);
  data::Normalizer norm = data::Normalizer::Fit(
      t::Tensor::RandomNormal(t::Shape{32, kFeatures}, rng));
  auto gate_owner = std::make_unique<GateModel>();
  GateModel* gate = gate_owner.get();
  ModelRegistry registry([] { return std::make_unique<GateModel>(); }, norm);
  registry.Install(std::move(gate_owner));

  ServerOptions options = TinyServerOptions();
  options.max_batch = 1;
  options.max_wait = std::chrono::microseconds(0);
  options.stall_budget = std::chrono::milliseconds(30);
  ForecastServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  ForecastRequest stuck;
  stuck.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  auto stuck_future = server.Submit(std::move(stuck));
  ASSERT_TRUE(stuck_future.ok());
  gate->WaitEntered(1);  // the batch is now in flight and blocked

  // Wait out the stall budget, then the probe must flip to wedged.
  for (int i = 0; i < 200 && !server.CheckHealth().wedged; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  HealthReport report = server.CheckHealth();
  EXPECT_TRUE(report.wedged);
  EXPECT_FALSE(report.ready);
  EXPECT_GT(report.batch_in_flight_seconds, 0.0);

  // Submit now fails fast instead of queueing behind the dead worker.
  ForecastRequest shed;
  shed.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  auto shed_result = server.Submit(std::move(shed));
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), core::StatusCode::kUnavailable);
  EXPECT_NE(shed_result.status().message().find("wedged"), std::string::npos);

  gate->Release();  // un-wedge; the stuck request completes normally
  EXPECT_TRUE(stuck_future.value().get().ok());
  server.Shutdown();
  auto snap = server.stats().TakeSnapshot();
  EXPECT_GE(snap.rejected_wedged, 1);
}

// -- Chaos: every request reaches exactly one allowed terminal status --------

// Allowed terminals: Ok (possibly degraded), Unavailable, DeadlineExceeded,
// InvalidArgument. std::promise enforces "exactly one" (a second set_value
// throws); future.get() returning at all proves "at least one".
bool AllowedTerminal(const ForecastResult& result) {
  if (result.ok()) return !t::HasNonFinite(result.value().forecast);
  switch (result.status().code()) {
    case core::StatusCode::kUnavailable:
    case core::StatusCode::kDeadlineExceeded:
    case core::StatusCode::kInvalidArgument:
      return true;
    default:
      return false;
  }
}

TEST(ChaosTest, EveryRequestTerminatesUnderEveryFaultSchedule) {
  const char* kSchedules[] = {
      "",  // control
      "serve_enqueue=error(Unavailable)@2",
      "serve_batch_run=error(Internal)",
      "serve_batch_run=error(Unavailable)@1",
      "serve_batch_run=delay(15)",
      "registry_get=error(Unavailable)@2",
      "serve_batch_run=error(Internal),serve_fallback=error(Unavailable)",
      "serve_enqueue=delay(3),serve_batch_run=error(Internal)@3",
      "registry_get=error(Unavailable),serve_fallback=error(Unavailable)@2",
  };

  auto dataset = TinyWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = TinyConfig();

  for (const char* schedule : kSchedules) {
    SCOPED_TRACE(std::string("schedule: ") + schedule);
    ScopedFailpoints fp(schedule);

    ModelRegistry registry(
        [config] { return std::make_unique<model_ns::SstbanModel>(config); },
        norm);
    registry.Install(std::make_unique<model_ns::SstbanModel>(config));
    ServerOptions options = TinyServerOptions();
    options.fallback.primary_breaker.min_samples = 4;
    ForecastServer server(options, &registry);
    server.SetVarBaseline(FittedVar(*dataset, norm));
    ASSERT_TRUE(server.Start().ok());

    constexpr int kClients = 3;
    constexpr int kPerClient = 6;
    std::atomic<int> terminal{0};
    std::atomic<int> bad{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kPerClient; ++r) {
          ForecastRequest request;
          int64_t start = (c * kPerClient + r) % 24;
          request.recent = t::Slice(dataset->signals, 0, start, kSteps).Clone();
          request.first_step = start;
          if (r % 3 == 1) {  // some requests carry masked-missing readings
            request.recent.data()[c * kFeatures] = kNaN;
          }
          if (r % 4 == 3) {  // some requests carry tight deadlines
            request.deadline =
                Clock::now() + std::chrono::milliseconds(10);
          }
          auto submitted = server.Submit(std::move(request));
          if (!submitted.ok()) {
            ForecastResult as_result(submitted.status());
            (AllowedTerminal(as_result) ? terminal : bad).fetch_add(1);
            continue;
          }
          ForecastResult result = submitted.value().get();
          (AllowedTerminal(result) ? terminal : bad).fetch_add(1);
        }
      });
    }
    for (std::thread& client : clients) client.join();
    server.Shutdown();

    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(terminal.load(), kClients * kPerClient);
    // The worker survived the whole schedule (no wedge, no abort).
    EXPECT_FALSE(server.CheckHealth().wedged);
  }
}

// -- Resilience stats plumbing -----------------------------------------------

TEST(ResilienceStatsTest, SnapshotTableAndJsonCarryResilienceFields) {
  ServerStats stats;
  stats.RecordDegradation(DegradationLevel::kNone);
  stats.RecordDegradation(DegradationLevel::kPartial);
  stats.RecordDegradation(DegradationLevel::kPartial);
  stats.RecordDegradation(DegradationLevel::kHeavy);
  stats.RecordServedBy(ServedBy::kModel);
  stats.RecordServedBy(ServedBy::kVarBaseline);
  stats.RecordServedBy(ServedBy::kCache);
  stats.RecordRejectedNonFinite();
  stats.RecordRejectedWedged();
  stats.RecordSweptExpired(3);
  stats.SetResilienceProvider([] {
    ServerStats::ResilienceSummary summary;
    summary.fallback_enabled = true;
    summary.var_available = true;
    summary.primary_breaker_state = "half-open";
    summary.primary_trips = 2;
    summary.primary_probes = 5;
    summary.primary_rejected = 7;
    summary.cached_sensors = 4;
    return summary;
  });

  ServerStats::Snapshot snap = stats.TakeSnapshot();
  EXPECT_EQ(snap.degraded_none, 1);
  EXPECT_EQ(snap.degraded_partial, 2);
  EXPECT_EQ(snap.degraded_heavy, 1);
  EXPECT_EQ(snap.served_model, 1);
  EXPECT_EQ(snap.served_var, 1);
  EXPECT_EQ(snap.served_cache, 1);
  EXPECT_EQ(snap.rejected_nonfinite, 1);
  EXPECT_EQ(snap.rejected_invalid, 1);  // nonfinite counts as invalid too
  EXPECT_EQ(snap.rejected_wedged, 1);
  EXPECT_EQ(snap.swept_expired, 3);
  EXPECT_EQ(snap.resilience.primary_breaker_state, "half-open");
  EXPECT_EQ(snap.resilience.primary_trips, 2);
  EXPECT_EQ(snap.resilience.cached_sensors, 4);

  std::string table = stats.ReportTable();
  EXPECT_NE(table.find("degraded: none=1 partial=2 heavy=1"),
            std::string::npos);
  EXPECT_NE(table.find("served: model=1 var=1 cache=1"), std::string::npos);
  EXPECT_NE(table.find("state=half-open trips=2 probes=5 rejected=7"),
            std::string::npos);

  std::string json = stats.ReportJson();
  EXPECT_NE(json.find("\"degraded\": {\"none\": 1, \"partial\": 2, "
                      "\"heavy\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"served_by\": {\"model\": 1, \"var\": 1, "
                      "\"cache\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"resilience\""), std::string::npos);
  EXPECT_NE(json.find("\"primary_breaker\": {\"state\": \"half-open\", "
                      "\"trips\": 2, \"probes\": 5, \"rejected\": 7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"swept_expired\": 3"), std::string::npos);
}

}  // namespace
}  // namespace sstban::serving

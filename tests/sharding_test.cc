// Tests for horizontally sharded serving: tensor gather/scatter, parameter
// slicing (shard models bitwise-equal to the full model on their view),
// scatter/gather routing with partial results and hedging, and fleet-level
// health/stats aggregation.

#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "sharding/fleet.h"
#include "sharding/loadgen.h"
#include "sharding/partitioner.h"
#include "sharding/router.h"
#include "sharding/shard_model.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"

namespace sstban::sharding {
namespace {

namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 12;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 12;

std::shared_ptr<data::TrafficDataset> SmallWorld(int corridors = 3) {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = corridors;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 6;
  config.seed = 31;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig SmallConfig(bool spatial_mixing) {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.spatial_mixing = spatial_mixing;
  config.seed = 5;
  return config;
}

serving::ServerOptions SmallServerOptions() {
  serving::ServerOptions options;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = kStepsPerDay;
  options.num_nodes = kNodes;
  options.num_features = kFeatures;
  options.max_batch = 4;
  options.max_wait = std::chrono::milliseconds(2);
  options.queue_capacity = 64;
  return options;
}

FleetOptions SmallFleetOptions(int64_t shards, int64_t replicas = 1,
                               int64_t halo_hops = 0) {
  FleetOptions options;
  options.partition.num_shards = shards;
  options.partition.halo_hops = halo_hops;
  options.server = SmallServerOptions();
  options.replicas_per_shard = replicas;
  options.router.shard_timeout = std::chrono::milliseconds(3000);
  return options;
}

// The unsharded reference: one ForecastServer over the full graph, same
// registry/batcher pipeline the shard workers run.
struct FullServer {
  explicit FullServer(const model_ns::SstbanConfig& config,
                      const data::Normalizer& norm)
      : registry(
            [config] { return std::make_unique<model_ns::SstbanModel>(config); },
            norm) {
    registry.Install(std::make_unique<model_ns::SstbanModel>(config));
    server = std::make_unique<serving::ForecastServer>(SmallServerOptions(),
                                                       &registry);
  }
  ~FullServer() { server->Shutdown(); }

  serving::ModelRegistry registry;
  std::unique_ptr<serving::ForecastServer> server;
};

// -- GatherNodes / ScatterNodes ----------------------------------------------

TEST(ShardModelTest, GatherThenScatterRoundTrips) {
  core::Rng rng(3);
  t::Tensor full =
      t::Tensor::RandomUniform(t::Shape{4, 7, 2}, rng, -1.0f, 1.0f);
  std::vector<int64_t> nodes = {1, 3, 6};
  t::Tensor slice = GatherNodes(full, nodes);
  ASSERT_EQ(slice.dim(0), 4);
  ASSERT_EQ(slice.dim(1), 3);
  ASSERT_EQ(slice.dim(2), 2);
  for (int64_t p = 0; p < 4; ++p) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (int64_t c = 0; c < 2; ++c) {
        EXPECT_EQ(slice.at({p, static_cast<int64_t>(i), c}),
                  full.at({p, nodes[i], c}));
      }
    }
  }
  t::Tensor rebuilt = t::Tensor::Zeros(t::Shape{4, 7, 2});
  ScatterNodes(slice, nodes, &rebuilt);
  for (int64_t p = 0; p < 4; ++p) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (int64_t c = 0; c < 2; ++c) {
        EXPECT_EQ(rebuilt.at({p, nodes[i], c}), full.at({p, nodes[i], c}));
      }
    }
  }
}

// -- BuildShardModel ----------------------------------------------------------

TEST(ShardModelTest, FullViewSliceIsBitwiseIdenticalToOriginal) {
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/true);
  model_ns::SstbanModel full(config);
  std::vector<int64_t> all_nodes(kNodes);
  for (int64_t v = 0; v < kNodes; ++v) all_nodes[v] = v;
  auto clone = BuildShardModel(full, all_nodes);
  auto full_params = full.NamedParameters();
  auto clone_params = clone->NamedParameters();
  ASSERT_EQ(full_params.size(), clone_params.size());
  for (size_t i = 0; i < full_params.size(); ++i) {
    const t::Tensor& a = full_params[i].second.value();
    const t::Tensor& b = clone_params[i].second.value();
    ASSERT_TRUE(a.shape() == b.shape()) << full_params[i].first;
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.size()) * sizeof(float)),
              0)
        << full_params[i].first;
  }
}

TEST(ShardModelTest, SpatialEmbeddingRowsAreGathered) {
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/true);
  model_ns::SstbanModel full(config);
  std::vector<int64_t> view = {2, 5, 9};
  auto shard = BuildShardModel(full, view);
  EXPECT_EQ(shard->config().num_nodes, 3);
  t::Tensor full_emb, shard_emb;
  for (const auto& [name, param] : full.NamedParameters()) {
    if (name == "ste.spatial.weight") full_emb = param.value();
  }
  for (const auto& [name, param] : shard->NamedParameters()) {
    if (name == "ste.spatial.weight") shard_emb = param.value();
  }
  ASSERT_TRUE(full_emb.defined());
  ASSERT_TRUE(shard_emb.defined());
  const int64_t d = full_emb.dim(1);
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(std::memcmp(shard_emb.data() + static_cast<int64_t>(i) * d,
                          full_emb.data() + view[i] * d,
                          static_cast<size_t>(d) * sizeof(float)),
              0);
  }
}

// -- Sharded == unsharded -----------------------------------------------------

// The headline exactness guarantee: with the temporal-only model (spatial
// receptive field is node-local), a K=4 fleet answers every sensor with
// the bit-identical forecast the single full-graph server produces.
TEST(ShardedServingTest, TemporalOnlyFleetMatchesUnshardedBitwise) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/false);

  FullServer reference(config, norm);
  ASSERT_TRUE(reference.server->Start().ok());

  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       SmallFleetOptions(/*shards=*/4));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  for (int64_t first_step : {0, 7, 19}) {
    t::Tensor window =
        t::Slice(dataset->signals, 0, first_step, kSteps).Clone();

    serving::ForecastRequest flat;
    flat.recent = window;
    flat.first_step = first_step;
    auto flat_submitted = reference.server->Submit(flat);
    ASSERT_TRUE(flat_submitted.ok());
    serving::ForecastResult flat_result = flat_submitted.value().get();
    ASSERT_TRUE(flat_result.ok()) << flat_result.status().ToString();

    ShardedRequest sharded;
    sharded.recent = window;
    sharded.first_step = first_step;
    auto sharded_submitted = fleet->router().Submit(std::move(sharded));
    ASSERT_TRUE(sharded_submitted.ok());
    ShardedResult sharded_result = sharded_submitted.value().get();
    ASSERT_TRUE(sharded_result.ok()) << sharded_result.status().ToString();
    const ShardedResponse& response = sharded_result.value();
    EXPECT_TRUE(response.failed_sensors.empty());
    EXPECT_FALSE(response.degraded());
    ASSERT_EQ(response.sensors.size(), static_cast<size_t>(kNodes));

    const t::Tensor& a = flat_result.value().forecast;
    const t::Tensor& b = response.forecast;
    ASSERT_TRUE(a.shape() == b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.size()) * sizeof(float)),
              0)
        << "first_step=" << first_step;
  }
  fleet->Shutdown();
}

// With spatial attention ON the receptive field is global, so exactness
// needs the halo to cover the whole graph — each shard then runs the full
// model on the full node axis and the slicing/routing machinery must still
// reproduce the unsharded answer bit for bit.
TEST(ShardedServingTest, FullHaloFleetMatchesUnshardedWithSpatialAttention) {
  // A single corridor is one connected chain, so a kNodes-hop halo provably
  // reaches every node (multi-corridor worlds may be disconnected and the
  // halo BFS honestly cannot cross components).
  auto dataset = SmallWorld(/*corridors=*/1);
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/true);

  FullServer reference(config, norm);
  ASSERT_TRUE(reference.server->Start().ok());

  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(
      *dataset->graph, full_model, norm,
      SmallFleetOptions(/*shards=*/3, /*replicas=*/1,
                        /*halo_hops=*/kNodes));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  // Exactness with spatial mixing requires every shard to see every node;
  // skip (vacuously) if the synthetic graph were disconnected.
  for (const ShardSpec& spec : fleet->plan().shards) {
    ASSERT_EQ(spec.view.size(), static_cast<size_t>(kNodes))
        << "graph not connected within halo radius";
  }
  ASSERT_TRUE(fleet->Start().ok());

  t::Tensor window = t::Slice(dataset->signals, 0, 4, kSteps).Clone();
  serving::ForecastRequest flat;
  flat.recent = window;
  flat.first_step = 4;
  auto flat_submitted = reference.server->Submit(flat);
  ASSERT_TRUE(flat_submitted.ok());
  serving::ForecastResult flat_result = flat_submitted.value().get();
  ASSERT_TRUE(flat_result.ok());

  ShardedRequest sharded;
  sharded.recent = window;
  sharded.first_step = 4;
  auto sharded_submitted = fleet->router().Submit(std::move(sharded));
  ASSERT_TRUE(sharded_submitted.ok());
  ShardedResult sharded_result = sharded_submitted.value().get();
  ASSERT_TRUE(sharded_result.ok());

  const t::Tensor& a = flat_result.value().forecast;
  const t::Tensor& b = sharded_result.value().forecast;
  ASSERT_TRUE(a.shape() == b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0);
  fleet->Shutdown();
}

// -- Routing ------------------------------------------------------------------

TEST(ShardedServingTest, SubsetRequestTouchesOnlyOwningShards) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/false);
  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       SmallFleetOptions(/*shards=*/4));
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  // Ask only for shard 2's sensors: exactly one shard is dispatched.
  const ShardSpec& spec = fleet->plan().shards[2];
  ShardedRequest request;
  request.recent = t::Slice(dataset->signals, 0, 0, kSteps).Clone();
  request.sensors = spec.owned;
  auto submitted = fleet->router().Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());
  ShardedResult result = submitted.value().get();
  ASSERT_TRUE(result.ok());
  const ShardedResponse& response = result.value();
  ASSERT_EQ(response.shards.size(), 1u);
  EXPECT_EQ(response.shards[0].shard, 2);
  EXPECT_EQ(response.sensors, spec.owned);
  EXPECT_EQ(response.forecast.dim(1),
            static_cast<int64_t>(spec.owned.size()));
  for (int64_t i = 0; i < response.forecast.size(); ++i) {
    EXPECT_FALSE(std::isnan(response.forecast.data()[i]));
  }
  fleet->Shutdown();
}

TEST(ShardedServingTest, InvalidRequestsAreRejectedSynchronously) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/false);
  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       SmallFleetOptions(/*shards=*/2));
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  ShardedRequest wrong_shape;
  wrong_shape.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes + 1, kFeatures});
  EXPECT_EQ(fleet->router().Submit(std::move(wrong_shape)).status().code(),
            core::StatusCode::kInvalidArgument);

  ShardedRequest bad_sensor;
  bad_sensor.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  bad_sensor.sensors = {0, kNodes};
  EXPECT_EQ(fleet->router().Submit(std::move(bad_sensor)).status().code(),
            core::StatusCode::kInvalidArgument);

  EXPECT_GE(fleet->router().StatsSnapshot().rejected, 2);
  fleet->Shutdown();

  ShardedRequest after_shutdown;
  after_shutdown.recent = t::Tensor::Ones(t::Shape{kSteps, kNodes, kFeatures});
  EXPECT_EQ(fleet->router().Submit(std::move(after_shutdown)).status().code(),
            core::StatusCode::kUnavailable);
}

TEST(ShardedServingTest, ExpiredDeadlineYieldsDeadlineExceeded) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/false);
  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       SmallFleetOptions(/*shards=*/2));
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  ShardedRequest request;
  request.recent = t::Slice(dataset->signals, 0, 0, kSteps).Clone();
  request.deadline = serving::Clock::now() - std::chrono::milliseconds(5);
  auto submitted = fleet->router().Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());  // scatter accepted; shards reject it
  ShardedResult result = submitted.value().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);
  fleet->Shutdown();
}

TEST(ShardedServingTest, HedgesToHealthyReplicaWhenOneReplicaIsDown) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/false);
  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(
      *dataset->graph, full_model, norm,
      SmallFleetOptions(/*shards=*/2, /*replicas=*/2));
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  // Kill one replica of each shard; the router must route around it, and
  // every sensor still gets a real (non-NaN) forecast.
  fleet->worker(0, 0).Shutdown();
  fleet->worker(1, 1).Shutdown();

  for (int i = 0; i < 6; ++i) {
    ShardedRequest request;
    request.recent = t::Slice(dataset->signals, 0, i, kSteps).Clone();
    request.first_step = i;
    auto submitted = fleet->router().Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    ShardedResult result = submitted.value().get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().failed_sensors.empty());
    for (int64_t j = 0; j < result.value().forecast.size(); ++j) {
      EXPECT_FALSE(std::isnan(result.value().forecast.data()[j]));
    }
  }
  RouterStatsSnapshot stats = fleet->router().StatsSnapshot();
  // Every request that rotated onto a dead replica was re-routed, either
  // proactively (health hedge) or after the Submit rejection (failover).
  EXPECT_GE(stats.hedges + stats.failovers, 1);
  EXPECT_EQ(stats.failed, 0);
  fleet->Shutdown();
}

// -- Fleet aggregation --------------------------------------------------------

TEST(ShardedServingTest, FleetTableAndJsonRollUpEveryReplica) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/false);
  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(
      *dataset->graph, full_model, norm,
      SmallFleetOptions(/*shards=*/3, /*replicas=*/2));
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  ShardedRequest request;
  request.recent = t::Slice(dataset->signals, 0, 0, kSteps).Clone();
  auto submitted = fleet->router().Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(submitted.value().get().ok());

  std::string table = fleet->router().FleetTable();
  EXPECT_NE(table.find("router:"), std::string::npos);
  EXPECT_NE(table.find("submitted=1"), std::string::npos);

  std::string json = fleet->router().FleetJson();
  EXPECT_NE(json.find("\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  // One health object per replica: 3 shards x 2 replicas.
  size_t replicas = 0;
  for (size_t pos = json.find("\"health\""); pos != std::string::npos;
       pos = json.find("\"health\"", pos + 1)) {
    ++replicas;
  }
  EXPECT_EQ(replicas, 6u);
  fleet->Shutdown();
}

// -- Open-loop load harness ---------------------------------------------------

TEST(ShardedServingTest, OpenLoopLoadDrivesFleetToAllTerminals) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/false);
  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       SmallFleetOptions(/*shards=*/4));
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  LoadGenOptions load;
  load.rate_rps = 120.0;
  load.requests = 40;
  load.seed = 17;
  t::Tensor window = t::Slice(dataset->signals, 0, 0, kSteps).Clone();
  LoadGenReport report =
      RunOpenLoopLoad(&fleet->router(), window, /*first_step=*/0, load);

  // Every arrival reached exactly one terminal.
  EXPECT_EQ(report.submitted, 40);
  EXPECT_EQ(report.ok + report.partial + report.rejected +
                report.deadline_exceeded + report.unavailable + report.invalid,
            40);
  EXPECT_GT(report.ok, 0);
  EXPECT_GT(report.p99, 0.0);
  EXPECT_GE(report.p999, report.p50);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"offered_rps\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  fleet->Shutdown();
}

}  // namespace
}  // namespace sstban::sharding

#ifndef SSTBAN_TESTS_GRADCHECK_H_
#define SSTBAN_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace sstban::testing {

// Verifies analytic gradients against central finite differences for a
// scalar-valued function of several tensors. float32 limits precision, so
// perturbations and tolerances are coarse; keep test tensors tiny and
// well-conditioned.
//
//   fn: builds the scalar output from leaf variables (re-invoked per probe).
inline void ExpectGradientsMatch(
    const std::function<autograd::Variable(std::vector<autograd::Variable>&)>& fn,
    std::vector<tensor::Tensor> inputs, float eps = 1e-2f, float tol = 2e-2f) {
  // Analytic gradients.
  std::vector<autograd::Variable> leaves;
  leaves.reserve(inputs.size());
  for (auto& t : inputs) leaves.emplace_back(t.Clone(), /*requires_grad=*/true);
  autograd::Variable out = fn(leaves);
  ASSERT_EQ(out.size(), 1) << "gradcheck needs a scalar output";
  out.Backward();

  for (size_t which = 0; which < inputs.size(); ++which) {
    ASSERT_TRUE(leaves[which].has_grad()) << "no grad for input " << which;
    const tensor::Tensor& analytic = leaves[which].grad();
    for (int64_t i = 0; i < inputs[which].size(); ++i) {
      auto probe = [&](float delta) {
        std::vector<autograd::Variable> probe_leaves;
        for (size_t j = 0; j < inputs.size(); ++j) {
          tensor::Tensor copy = inputs[j].Clone();
          if (j == which) copy.data()[i] += delta;
          probe_leaves.emplace_back(copy, false);
        }
        return fn(probe_leaves).item();
      };
      float numeric = (probe(eps) - probe(-eps)) / (2.0f * eps);
      float a = analytic.data()[i];
      float scale = std::max({1.0f, std::fabs(a), std::fabs(numeric)});
      EXPECT_NEAR(a, numeric, tol * scale)
          << "input " << which << " element " << i;
    }
  }
}

// Verifies analytic *parameter* gradients against central finite differences
// for a module whose forward is captured in `fn` (a scalar-valued closure over
// the module's current parameter values). Unlike ExpectGradientsMatch, the
// leaves here are the module's own registered parameters, so this exercises
// gradient accumulation through shared weights (e.g. attention projections
// reused across heads).
//
//   fn: rebuilds the scalar loss from the module's current parameter values.
//   params: the module's parameters (perturbed in place, always restored).
//   max_probes_per_param: large parameters are stride-sampled down to this
//     many probes so whole-block checks stay fast; <=0 means probe everything.
inline void ExpectParameterGradientsMatch(
    const std::function<autograd::Variable()>& fn,
    std::vector<autograd::Variable> params, float eps = 1e-2f,
    float tol = 2e-2f, int64_t max_probes_per_param = 0) {
  // One analytic backward pass against the live parameters.
  for (auto& p : params) p.ZeroGrad();
  autograd::Variable out = fn();
  ASSERT_EQ(out.size(), 1) << "gradcheck needs a scalar output";
  out.Backward();

  for (size_t which = 0; which < params.size(); ++which) {
    ASSERT_TRUE(params[which].has_grad()) << "no grad for parameter " << which;
    tensor::Tensor analytic = params[which].grad().Clone();
    float* values = params[which].mutable_value().data();
    int64_t n = params[which].size();
    int64_t stride = 1;
    if (max_probes_per_param > 0 && n > max_probes_per_param) {
      stride = (n + max_probes_per_param - 1) / max_probes_per_param;
    }
    for (int64_t i = 0; i < n; i += stride) {
      float saved = values[i];
      auto probe = [&](float delta) {
        values[i] = saved + delta;
        autograd::NoGradGuard no_grad;
        return fn().item();
      };
      float numeric = (probe(eps) - probe(-eps)) / (2.0f * eps);
      values[i] = saved;
      float a = analytic.data()[i];
      float scale = std::max({1.0f, std::fabs(a), std::fabs(numeric)});
      EXPECT_NEAR(a, numeric, tol * scale)
          << "parameter " << which << " element " << i;
    }
  }
}

}  // namespace sstban::testing

#endif  // SSTBAN_TESTS_GRADCHECK_H_

#include "core/storage_pool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "core/memory_tracker.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sstban::core {
namespace {

namespace t = ::sstban::tensor;

// The pool and tracker are process-global, so every test starts from a
// flushed pool and takes counter deltas rather than absolute values.
class StoragePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoragePool::Global().SetEnabledForTesting(true);
    StoragePool::Global().Flush();
  }
  void TearDown() override {
    StoragePool::Global().SetPoisonForTesting(false);
    StoragePool::Global().SetMaxResidentBytesForTesting(0);
    StoragePool::Global().SetEnabledForTesting(true);
  }
};

TEST_F(StoragePoolTest, SizeClassRounding) {
  // Everything up to 64 floats shares the smallest class.
  EXPECT_EQ(StoragePool::RoundUpCapacity(0), 64);
  EXPECT_EQ(StoragePool::RoundUpCapacity(1), 64);
  EXPECT_EQ(StoragePool::RoundUpCapacity(64), 64);
  // Four classes per power of two above that.
  EXPECT_EQ(StoragePool::RoundUpCapacity(65), 80);
  EXPECT_EQ(StoragePool::RoundUpCapacity(80), 80);
  EXPECT_EQ(StoragePool::RoundUpCapacity(81), 96);
  EXPECT_EQ(StoragePool::RoundUpCapacity(100), 112);
  EXPECT_EQ(StoragePool::RoundUpCapacity(128), 128);
  EXPECT_EQ(StoragePool::RoundUpCapacity(129), 160);
  EXPECT_EQ(StoragePool::RoundUpCapacity(1000), 1024);
  EXPECT_EQ(StoragePool::RoundUpCapacity(1025), 1280);
  // Classes are monotone and never smaller than the request; above the
  // 64-float floor the waste is bounded by one step, i.e. < 1/4 of the
  // request.
  for (int64_t n = 1; n < 5000; n += 7) {
    int64_t cap = StoragePool::RoundUpCapacity(n);
    EXPECT_GE(cap, n);
    if (n > 64) EXPECT_LE(cap, n + (n + 3) / 4) << n;
    EXPECT_EQ(StoragePool::RoundUpCapacity(cap), cap) << "classes are fixed points";
  }
}

TEST_F(StoragePoolTest, ReusesBufferAcrossAllocFree) {
  StoragePool& pool = StoragePool::Global();
  int64_t cap = 0;
  float* first = pool.Allocate(1000, &cap);
  EXPECT_EQ(cap, 1024);
  pool.Release(first, cap);
  // Same size class (1000 and 1001 both round to 1024) gets the same
  // buffer back, LIFO.
  int64_t cap2 = 0;
  float* second = pool.Allocate(1001, &cap2);
  EXPECT_EQ(cap2, cap);
  EXPECT_EQ(second, first);
  pool.Release(second, cap2);
  // A different class misses.
  int64_t cap3 = 0;
  float* third = pool.Allocate(300, &cap3);
  EXPECT_NE(third, first);
  pool.Release(third, cap3);
}

TEST_F(StoragePoolTest, LruTrimBoundsResidentBytes) {
  StoragePool& pool = StoragePool::Global();
  MemoryTracker& tracker = MemoryTracker::Global();
  // 1 MiB buffers bypass the thread cache (256 KiB max), so releases go
  // straight to the LRU-bounded global list.
  constexpr int64_t kElements = 1 << 18;  // exactly a size class: 1 MiB
  ASSERT_EQ(StoragePool::RoundUpCapacity(kElements), kElements);
  pool.SetMaxResidentBytesForTesting(4 << 20);  // room for 4 buffers
  std::vector<float*> buffers;
  std::vector<int64_t> caps;
  for (int i = 0; i < 6; ++i) {
    int64_t cap = 0;
    buffers.push_back(pool.Allocate(kElements, &cap));
    caps.push_back(cap);
  }
  int64_t trimmed_before = tracker.pool_trimmed_bytes();
  for (int i = 0; i < 6; ++i) pool.Release(buffers[i], caps[i]);
  // Two of the six releases must have been evicted to stay within budget.
  EXPECT_LE(tracker.pool_resident_bytes(), 4 << 20);
  EXPECT_EQ(tracker.pool_trimmed_bytes() - trimmed_before, 2LL << 20);
  // Eviction is LRU: the two oldest releases (buffers[0], buffers[1]) are
  // gone; the four newest are still recyclable.
  std::set<float*> survivors;
  for (int i = 0; i < 4; ++i) {
    int64_t cap = 0;
    survivors.insert(pool.Allocate(kElements, &cap));
  }
  EXPECT_EQ(survivors,
            std::set<float*>(buffers.begin() + 2, buffers.end()));
  for (float* data : survivors) pool.Release(data, kElements);
}

TEST_F(StoragePoolTest, CrossThreadRecycleViaGlobalList) {
  StoragePool& pool = StoragePool::Global();
  // Big buffers skip the per-thread cache, so the worker's release is
  // immediately visible to this thread.
  constexpr int64_t kElements = 1 << 18;
  float* worker_buffer = nullptr;
  std::thread worker([&] {
    int64_t cap = 0;
    worker_buffer = pool.Allocate(kElements, &cap);
    pool.Release(worker_buffer, cap);
  });
  worker.join();
  int64_t cap = 0;
  float* reused = pool.Allocate(kElements, &cap);
  EXPECT_EQ(reused, worker_buffer);
  pool.Release(reused, cap);
}

TEST_F(StoragePoolTest, ThreadCacheMigratesToGlobalOnThreadExit) {
  StoragePool& pool = StoragePool::Global();
  MemoryTracker& tracker = MemoryTracker::Global();
  // Small buffer: parked in the worker's thread cache on release, then
  // handed to the global list when the worker exits.
  float* worker_buffer = nullptr;
  std::thread worker([&] {
    int64_t cap = 0;
    worker_buffer = pool.Allocate(500, &cap);
    pool.Release(worker_buffer, cap);
  });
  worker.join();
  int64_t hits_before = tracker.pool_hits();
  int64_t cap = 0;
  float* reused = pool.Allocate(500, &cap);
  EXPECT_EQ(reused, worker_buffer);
  EXPECT_EQ(tracker.pool_hits(), hits_before + 1);
  pool.Release(reused, cap);
}

TEST_F(StoragePoolTest, StatsAccounting) {
  StoragePool& pool = StoragePool::Global();
  MemoryTracker& tracker = MemoryTracker::Global();
  int64_t hits0 = tracker.pool_hits();
  int64_t misses0 = tracker.pool_misses();
  int64_t recycled0 = tracker.pool_recycled_bytes();
  int64_t heap0 = tracker.heap_allocs();

  int64_t cap = 0;
  float* data = pool.Allocate(200, &cap);  // cold: miss + heap alloc
  EXPECT_EQ(tracker.pool_misses(), misses0 + 1);
  EXPECT_EQ(tracker.heap_allocs(), heap0 + 1);
  EXPECT_EQ(tracker.pool_hits(), hits0);

  int64_t resident0 = tracker.pool_resident_bytes();
  pool.Release(data, cap);
  int64_t cap_bytes = cap * static_cast<int64_t>(sizeof(float));
  EXPECT_EQ(tracker.pool_resident_bytes(), resident0 + cap_bytes);
  EXPECT_GE(tracker.pool_peak_resident_bytes(), resident0 + cap_bytes);

  float* again = pool.Allocate(200, &cap);  // warm: hit, no heap traffic
  EXPECT_EQ(again, data);
  EXPECT_EQ(tracker.pool_hits(), hits0 + 1);
  EXPECT_EQ(tracker.pool_recycled_bytes(), recycled0 + cap_bytes);
  EXPECT_EQ(tracker.heap_allocs(), heap0 + 1);
  EXPECT_EQ(tracker.pool_resident_bytes(), resident0);
  pool.Release(again, cap);
}

TEST_F(StoragePoolTest, DisabledPoolIsPassThrough) {
  StoragePool& pool = StoragePool::Global();
  MemoryTracker& tracker = MemoryTracker::Global();
  pool.SetEnabledForTesting(false);
  int64_t hits0 = tracker.pool_hits();
  int64_t cap = 0;
  float* data = pool.Allocate(1000, &cap);
  EXPECT_EQ(cap, 1000);  // no size-class rounding when disabled
  pool.Release(data, cap);
  float* again = pool.Allocate(1000, &cap);
  pool.Release(again, cap);
  EXPECT_EQ(tracker.pool_hits(), hits0);
  EXPECT_EQ(tracker.pool_resident_bytes(), 0);
  pool.SetEnabledForTesting(true);
}

// A recycled buffer must never alias storage that is still reachable
// through a live tensor: the shared_ptr keeps the Storage (and its pool
// buffer) alive, so the pool cannot have it.
TEST_F(StoragePoolTest, RecycledBufferNeverAliasesLiveTensor) {
  t::Tensor a = t::Tensor::Empty(t::Shape{256});
  a.Fill(1.0f);
  const float* a_data = a.data();

  // While `a` is alive, new allocations of its class must not alias it.
  t::Tensor b = t::Tensor::Empty(t::Shape{256});
  b.Fill(2.0f);
  EXPECT_NE(b.data(), a_data);

  // A view shares the storage; dropping only the original tensor must NOT
  // recycle the buffer (the view still reads it).
  t::Tensor view = a.Reshape(t::Shape{16, 16});
  a = t::Tensor();  // drop one alias; `view` keeps the storage alive
  t::Tensor c = t::Tensor::Empty(t::Shape{256});
  c.Fill(3.0f);
  EXPECT_NE(c.data(), a_data);
  for (int64_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view.data()[i], 1.0f) << "live view clobbered via recycled alias";
  }

  // Once the last alias dies the buffer may be recycled — handed out at
  // most once at a time.
  view = t::Tensor();
  t::Tensor d = t::Tensor::Empty(t::Shape{256});
  t::Tensor e = t::Tensor::Empty(t::Shape{256});
  EXPECT_NE(d.data(), e.data());
  d.Fill(4.0f);
  e.Fill(5.0f);
  for (int64_t i = 0; i < 256; ++i) {
    ASSERT_EQ(d.data()[i], 4.0f);
    ASSERT_EQ(e.data()[i], 5.0f);
  }
}

TEST_F(StoragePoolTest, PoisonOnRecycleFillsBufferWithNans) {
  StoragePool& pool = StoragePool::Global();
  pool.SetPoisonForTesting(true);
  int64_t cap = 0;
  float* data = pool.Allocate(128, &cap);
  // Fresh uninitialized memory is poisoned too, so a read-before-write
  // surfaces even on a cold allocation.
  for (int64_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(std::isnan(data[i])) << i;
  }
  std::fill_n(data, cap, 1.0f);
  pool.Release(data, cap);
  float* again = pool.Allocate(128, &cap);
  ASSERT_EQ(again, data);
  for (int64_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(std::isnan(again[i])) << "stale value survived recycle at " << i;
  }
  pool.Release(again, cap);
  // Zeroed allocations stay genuinely zero in poison mode.
  t::Tensor zeros = t::Tensor::Zeros(t::Shape{128});
  for (int64_t i = 0; i < zeros.size(); ++i) {
    ASSERT_EQ(zeros.data()[i], 0.0f);
  }
  pool.SetPoisonForTesting(false);
}

// Tensor-level pipelines behave identically however buffers are sourced.
TEST_F(StoragePoolTest, TensorResultsIdenticalPoolOnVsOff) {
  auto compute = [] {
    core::Rng rng(7);
    t::Tensor x = t::Tensor::RandomNormal(t::Shape{8, 33}, rng);
    t::Tensor y = t::Tensor::RandomNormal(t::Shape{33, 5}, rng);
    t::Tensor z = t::Matmul(x, y);
    z = t::Softmax(z);
    z = t::Mul(z, z);
    return t::Sum(z, 0).ToVector();
  };
  StoragePool::Global().SetEnabledForTesting(true);
  std::vector<float> pooled = compute();
  std::vector<float> pooled_again = compute();  // warm pool: recycled buffers
  StoragePool::Global().SetEnabledForTesting(false);
  std::vector<float> plain = compute();
  StoragePool::Global().SetEnabledForTesting(true);
  ASSERT_EQ(pooled.size(), plain.size());
  for (size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i], plain[i]) << i;
    EXPECT_EQ(pooled[i], pooled_again[i]) << i;
  }
}

}  // namespace
}  // namespace sstban::core

// The headline robustness gate: kill training at failpoint-chosen epochs in
// a subprocess, resume in a fresh process, and assert the final weights are
// bitwise identical to an uninterrupted run — at SSTBAN_NUM_THREADS=1 and 8.
//
// This binary has its own main(): when SSTBAN_CRASH_TEST_WORKER is set in
// the environment it runs one training job and exits instead of running
// gtest. The parent re-execs itself via std::system with the worker
// protocol in env vars, so crash schedules (abort() inside an injected
// failpoint) kill only the worker. fork() is not an option here: ThreadPool
// worker threads do not survive fork.

#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "nn/serialization.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/checkpoint.h"
#include "training/trainer.h"

namespace {
std::string g_binary_path;  // absolute path of this test binary, for re-exec
}  // namespace

namespace sstban {

namespace fs = std::filesystem;
namespace model_ns = ::sstban::sstban;

constexpr int kEpochs = 4;

model_ns::SstbanConfig WorkerModelConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = 4;
  config.input_len = 6;
  config.output_len = 6;
  config.num_features = 1;
  config.steps_per_day = 24;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  return config;
}

// One deterministic training job: world/model seeds are fixed, so any two
// workers given the same checkpoint directory history must converge to the
// same bytes.
int RunCrashTestWorker() {
  const char* dir = std::getenv("SSTBAN_WORKER_CKPT_DIR");
  const char* out = std::getenv("SSTBAN_WORKER_OUT");
  if (dir == nullptr || out == nullptr) {
    std::fprintf(stderr, "worker: missing SSTBAN_WORKER_* env\n");
    return 3;
  }
  data::SyntheticWorldConfig world;
  world.num_nodes = 4;
  world.num_corridors = 2;
  world.steps_per_day = 24;
  world.num_days = 5;
  world.seed = 57;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  data::WindowDataset windows(dataset, 6, 6);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanModel model(WorkerModelConfig());

  training::TrainerConfig config;
  config.max_epochs = kEpochs;
  config.batch_size = 8;
  config.checkpoint_dir = dir;
  training::Trainer(config).Train(&model, windows, split, normalizer);
  core::Status saved = nn::SaveParameters(model, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "worker: %s\n", saved.ToString().c_str());
    return 1;
  }
  return 0;
}

namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Launches one worker. `failpoints` always overrides SSTBAN_FAILPOINTS (an
// empty string disarms anything inherited from the CI fault matrix), so
// each run injects exactly the schedule the scenario asks for.
int LaunchWorker(const std::string& ckpt_dir, const std::string& out,
                 const std::string& failpoints, int num_threads) {
  std::string cmd = "SSTBAN_CRASH_TEST_WORKER=1"
                    " SSTBAN_WORKER_CKPT_DIR='" + ckpt_dir + "'" +
                    " SSTBAN_WORKER_OUT='" + out + "'" +
                    " SSTBAN_FAILPOINTS='" + failpoints + "'" +
                    " SSTBAN_NUM_THREADS=" + std::to_string(num_threads) +
                    " '" + g_binary_path + "'";
  return std::system(cmd.c_str());
}

bool ExitedCleanly(int rc) { return WIFEXITED(rc) && WEXITSTATUS(rc) == 0; }
bool Died(int rc) {
  return WIFSIGNALED(rc) || (WIFEXITED(rc) && WEXITSTATUS(rc) != 0);
}

void KillResumeCompare(const std::string& tag, const std::string& schedule,
                       int num_threads) {
  std::string dir_ref = FreshDir(tag + "_ref");
  std::string out_ref = dir_ref + "/final_weights.bin";
  ASSERT_TRUE(ExitedCleanly(LaunchWorker(dir_ref, out_ref, "", num_threads)));

  std::string dir_cut = FreshDir(tag + "_cut");
  std::string out_cut = dir_cut + "/final_weights.bin";
  int rc = LaunchWorker(dir_cut, out_cut, schedule, num_threads);
  ASSERT_TRUE(Died(rc)) << "schedule '" << schedule
                        << "' did not kill the worker (rc=" << rc << ")";
  EXPECT_FALSE(fs::exists(out_cut)) << "killed run must not reach the end";
  ASSERT_FALSE(training::ListTrainCheckpoints(dir_cut).empty())
      << "killed run left no checkpoint to resume from";

  ASSERT_TRUE(ExitedCleanly(LaunchWorker(dir_cut, out_cut, "", num_threads)));
  EXPECT_EQ(ReadAll(out_ref), ReadAll(out_cut))
      << "resumed weights diverged from the uninterrupted run";
  // The full persisted training state converged too, not just the weights.
  std::string last = "/" + training::TrainCheckpointFileName(kEpochs);
  EXPECT_EQ(ReadAll(dir_ref + last), ReadAll(dir_cut + last));
}

TEST(CheckpointCrashTest, KillAfterEpochTwoThenResumeIsBitwiseIdentical) {
  KillResumeCompare("crash_epoch", "train_epoch_end=crash@2",
                    /*num_threads=*/1);
}

TEST(CheckpointCrashTest, KillAndResumeIsBitwiseIdenticalWithEightThreads) {
  KillResumeCompare("crash_epoch_mt", "train_epoch_end=crash@2",
                    /*num_threads=*/8);
}

TEST(CheckpointCrashTest, CrashDuringCheckpointRenameResumesFromOlderOne) {
  // Dies mid-write of the epoch-2 checkpoint: the temp file is orphaned,
  // the final path never appears, and resume falls back to epoch 1 — and
  // still converges to identical bytes.
  KillResumeCompare("crash_rename", "ckpt_rename=crash@2", /*num_threads=*/1);
}

TEST(CheckpointCrashTest, KilledRunLeavesOnlyLoadableCheckpoints) {
  std::string dir = FreshDir("crash_inspect");
  std::string out = dir + "/final_weights.bin";
  int rc = LaunchWorker(dir, out, "ckpt_rename=crash@2", /*num_threads=*/1);
  ASSERT_TRUE(Died(rc));
  // Epoch 2's rename crashed, so only epoch 1 is at a final path — and it
  // must load cleanly.
  auto found = training::ListTrainCheckpoints(dir);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].find("000001"), std::string::npos);
  training::TrainCheckpoint state;
  core::Status loaded = training::LoadTrainCheckpoint(found[0], &state);
  // An environment fault schedule may fail the read itself; retry past it —
  // only persistent failures mean the file is actually torn.
  for (int retry = 0; !loaded.ok() && retry < 4 &&
                      loaded.message().find("injected by failpoint") !=
                          std::string::npos;
       ++retry) {
    loaded = training::LoadTrainCheckpoint(found[0], &state);
  }
  EXPECT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_EQ(state.next_epoch, 1);
}

}  // namespace
}  // namespace sstban

int main(int argc, char** argv) {
  g_binary_path = std::filesystem::absolute(argv[0]).string();
  if (std::getenv("SSTBAN_CRASH_TEST_WORKER") != nullptr) {
    return sstban::RunCrashTestWorker();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/rng.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace sstban::optim {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

// Minimizes ||x - target||^2 with the given optimizer; returns final loss.
template <typename Opt, typename... Args>
float MinimizeQuadratic(int steps, float lr, Args... args) {
  ag::Variable x(t::Tensor::Full(t::Shape{4}, 5.0f), true);
  t::Tensor target = t::Tensor::FromVector(t::Shape{4}, {1, -2, 0.5, 3});
  Opt opt({x}, lr, args...);
  float loss_value = 0;
  for (int i = 0; i < steps; ++i) {
    ag::Variable loss = ag::MseLoss(x, ag::Variable(target));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
    loss_value = loss.item();
  }
  return loss_value;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimizeQuadratic<Sgd>(200, 0.1f), 1e-4f);
}

TEST(SgdTest, MomentumAccelerates) {
  float plain = MinimizeQuadratic<Sgd>(30, 0.05f);
  float momentum = MinimizeQuadratic<Sgd>(30, 0.05f, 0.9f);
  EXPECT_LT(momentum, plain);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimizeQuadratic<Adam>(400, 0.05f), 1e-3f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  ag::Variable used(t::Tensor::Full(t::Shape{1}, 1.0f), true);
  ag::Variable unused(t::Tensor::Full(t::Shape{1}, 7.0f), true);
  Adam opt({used, unused}, 0.1f);
  ag::Variable loss = ag::SumAll(ag::Square(used));
  loss.Backward();
  opt.Step();
  EXPECT_FLOAT_EQ(unused.value().item(), 7.0f);
  EXPECT_NE(used.value().item(), 1.0f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  ag::Variable x(t::Tensor::Full(t::Shape{1}, 1.0f), true);
  Adam opt({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 50; ++i) {
    // Loss gradient of zero: only decay acts.
    ag::Variable loss = ag::MulScalar(ag::SumAll(x), 0.0f);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(x.value().item(), 0.9f);
}

TEST(ClipGradNormTest, ScalesLargeGradients) {
  ag::Variable x(t::Tensor::Full(t::Shape{4}, 10.0f), true);
  ag::SumAll(ag::Square(x)).Backward();  // grad = 20 each, norm = 40
  float norm = ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(norm, 40.0f, 1e-3f);
  double clipped_sq = 0;
  for (int64_t i = 0; i < 4; ++i) {
    clipped_sq += x.grad().data()[i] * x.grad().data()[i];
  }
  EXPECT_NEAR(std::sqrt(clipped_sq), 1.0f, 1e-4f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ag::Variable x(t::Tensor::Full(t::Shape{2}, 0.01f), true);
  ag::SumAll(ag::Square(x)).Backward();
  float before = x.grad().data()[0];
  ClipGradNorm({x}, 10.0f);
  EXPECT_FLOAT_EQ(x.grad().data()[0], before);
}

TEST(EarlyStoppingTest, StopsAfterPatienceEpochs) {
  EarlyStopping early(3);
  EXPECT_FALSE(early.Update(1.0f));  // improvement
  EXPECT_FALSE(early.Update(2.0f));  // stale 1
  EXPECT_FALSE(early.Update(2.0f));  // stale 2
  EXPECT_TRUE(early.Update(2.0f));   // stale 3 -> stop
}

TEST(EarlyStoppingTest, ImprovementResetsCounter) {
  EarlyStopping early(2);
  EXPECT_FALSE(early.Update(1.0f));
  EXPECT_FALSE(early.Update(1.5f));
  EXPECT_FALSE(early.Update(0.5f));  // improvement resets
  EXPECT_TRUE(early.improved_last_update());
  EXPECT_FLOAT_EQ(early.best_metric(), 0.5f);
  EXPECT_FALSE(early.Update(0.9f));
  EXPECT_TRUE(early.Update(0.9f));
}

}  // namespace
}  // namespace sstban::optim

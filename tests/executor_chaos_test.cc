// Chaos and lifecycle tests for the static executor under the full serving
// stack: injected trace/run faults must degrade to the tape forward (never
// to a failed request), a registry hot-swap mid-stream must retrace on the
// new model without torn programs, and shard-sliced executors must agree
// bitwise with the unsharded static server when spatial mixing is off.
//
// The `exec_trace` / `exec_run` failpoints these tests arm programmatically
// are the same ones the fault-injection and serving-chaos CI matrices arm
// through SSTBAN_FAILPOINTS; strict engine-stat assertions are skipped when
// the environment already armed failpoints so the chaos schedules can run
// this binary too.

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "core/rng.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "exec/engine.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "sharding/fleet.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"

namespace sstban {
namespace {

namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;
namespace serving = ::sstban::serving;
namespace sharding = ::sstban::sharding;

constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 8;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 12;

std::shared_ptr<data::TrafficDataset> SmallWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 2;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 4;
  config.seed = 19;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig SmallConfig(bool spatial_mixing = true) {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.temporal_refs = 2;
  config.spatial_refs = 2;
  config.patch_len = 2;
  config.spatial_mixing = spatial_mixing;
  config.self_supervised = false;
  config.seed = 9;
  return config;
}

serving::ServerOptions StaticServerOptions() {
  serving::ServerOptions options;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = kStepsPerDay;
  options.num_nodes = kNodes;
  options.num_features = kFeatures;
  options.max_batch = 1;  // deterministic (B=1) shape key per request
  options.max_wait = std::chrono::microseconds(0);
  options.queue_capacity = 64;
  options.executor_mode = training::ExecutorMode::kStatic;
  return options;
}

// Submits one request for the window starting at `first_step` and requires a
// successful (non-degraded-to-error) forecast.
t::Tensor MustForecast(serving::ForecastServer* server,
                       const data::TrafficDataset& dataset,
                       int64_t first_step) {
  serving::ForecastRequest request;
  request.recent = t::Slice(dataset.signals, 0, first_step, kSteps).Clone();
  request.first_step = first_step;
  auto submitted = server->Submit(std::move(request));
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  serving::ForecastResult result = submitted.value().get();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value().forecast : t::Tensor();
}

struct ServerFixture {
  explicit ServerFixture(const model_ns::SstbanConfig& config,
                         const data::Normalizer& norm,
                         serving::ServerOptions options)
      : registry(
            [config] { return std::make_unique<model_ns::SstbanModel>(config); },
            norm) {
    registry.Install(std::make_unique<model_ns::SstbanModel>(config));
    server = std::make_unique<serving::ForecastServer>(options, &registry);
  }
  ~ServerFixture() { server->Shutdown(); }

  exec::InferenceEngine* engine() {
    return registry.current()->model->inference_engine();
  }

  serving::ModelRegistry registry;
  std::unique_ptr<serving::ForecastServer> server;
};

// -- exec_trace / exec_run fault injection ------------------------------------

TEST(ExecutorChaosTest, TraceFaultFallsBackToTapeThenRecovers) {
  const bool env_armed = core::failpoint_internal::AnyArmed();
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  ServerFixture fixture(SmallConfig(), norm, StaticServerOptions());
  ASSERT_TRUE(fixture.server->Start().ok());

  // Every trace attempt faults: the static path must silently yield to the
  // tape — requests keep succeeding, nothing gets cached or poisoned.
  ASSERT_TRUE(core::FailPoint::Set("exec_trace", "error(kUnavailable)").ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(MustForecast(fixture.server.get(), *dataset, i).defined());
  }
  exec::InferenceEngine::Stats during = fixture.engine()->stats();
  EXPECT_EQ(during.compiles, 0);
  EXPECT_EQ(during.runs, 0);
  EXPECT_GE(during.failures, 3);
  EXPECT_EQ(during.poisoned, 0);

  // Disarm: the very next request retries the trace and compiles — transient
  // faults must not leave a permanent scar.
  core::FailPoint::Clear("exec_trace");
  for (int i = 3; i < 6; ++i) {
    EXPECT_TRUE(MustForecast(fixture.server.get(), *dataset, i).defined());
  }
  if (!env_armed) {
    exec::InferenceEngine::Stats after = fixture.engine()->stats();
    EXPECT_EQ(after.compiles, 1);
    EXPECT_GE(after.runs, 3);
    EXPECT_EQ(after.poisoned, 0);
  }
}

TEST(ExecutorChaosTest, RunFaultFallsBackToTapeThenRecovers) {
  const bool env_armed = core::failpoint_internal::AnyArmed();
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  ServerFixture fixture(SmallConfig(), norm, StaticServerOptions());
  ASSERT_TRUE(fixture.server->Start().ok());

  // exec_run faults the compile-time self-check replay too, so while armed
  // nothing completes a compile; requests are served by the tape.
  ASSERT_TRUE(core::FailPoint::Set("exec_run", "error(kInternal)").ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(MustForecast(fixture.server.get(), *dataset, i).defined());
  }
  exec::InferenceEngine::Stats during = fixture.engine()->stats();
  EXPECT_EQ(during.runs, 0);
  EXPECT_GE(during.failures, 3);
  EXPECT_EQ(during.poisoned, 0);

  core::FailPoint::Clear("exec_run");
  for (int i = 3; i < 6; ++i) {
    EXPECT_TRUE(MustForecast(fixture.server.get(), *dataset, i).defined());
  }
  if (!env_armed) {
    exec::InferenceEngine::Stats after = fixture.engine()->stats();
    EXPECT_EQ(after.compiles, 1);
    EXPECT_GE(after.runs, 3);
  }
}

// A single injected run fault mid-steady-state: that one batch falls back to
// the tape, the compiled program stays cached, and the next batch runs
// static again.
TEST(ExecutorChaosTest, TransientRunFaultDoesNotEvictTheProgram) {
  const bool env_armed = core::failpoint_internal::AnyArmed();
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  ServerFixture fixture(SmallConfig(), norm, StaticServerOptions());
  ASSERT_TRUE(fixture.server->Start().ok());

  EXPECT_TRUE(MustForecast(fixture.server.get(), *dataset, 0).defined());
  ASSERT_TRUE(core::FailPoint::Set("exec_run", "error(kUnavailable)@1").ok());
  EXPECT_TRUE(MustForecast(fixture.server.get(), *dataset, 1).defined());
  EXPECT_TRUE(MustForecast(fixture.server.get(), *dataset, 2).defined());
  core::FailPoint::Clear("exec_run");

  if (!env_armed) {
    exec::InferenceEngine::Stats stats = fixture.engine()->stats();
    EXPECT_EQ(stats.compiles, 1);  // never recompiled
    EXPECT_GE(stats.runs, 2);
    EXPECT_GE(stats.failures, 1);
  }
}

// -- Hot-swap lifecycle -------------------------------------------------------

// A registry hot-swap while static-serving traffic is in flight: in-flight
// batches finish on the pinned old snapshot (whose engine dies with the old
// model), later batches trace the new model from scratch. No request fails,
// no program is torn.
TEST(ExecutorChaosTest, HotSwapMidStreamRetracesOnTheNewModel) {
  const bool env_armed = core::failpoint_internal::AnyArmed();
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig();
  ServerFixture fixture(config, norm, StaticServerOptions());
  ASSERT_TRUE(fixture.server->Start().ok());

  std::shared_ptr<const serving::ModelRegistry::Served> v1 =
      fixture.registry.current();

  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  std::thread client([&] {
    for (int i = 0; i < 16; ++i) {
      serving::ForecastRequest request;
      request.recent =
          t::Slice(dataset->signals, 0, i % 8, kSteps).Clone();
      request.first_step = i % 8;
      auto submitted = fixture.server->Submit(std::move(request));
      if (!submitted.ok() || !submitted.value().get().ok()) {
        failed.fetch_add(1);
      }
      completed.fetch_add(1);
    }
  });

  // Swap once a few static batches have run on v1.
  while (completed.load() < 4) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  fixture.registry.Install(std::make_unique<model_ns::SstbanModel>(config));
  client.join();

  EXPECT_EQ(failed.load(), 0);
  // The post-swap snapshot serves from its own freshly traced engine.
  std::shared_ptr<const serving::ModelRegistry::Served> v2 =
      fixture.registry.current();
  ASSERT_NE(v2->version, v1->version);
  EXPECT_TRUE(MustForecast(fixture.server.get(), *dataset, 2).defined());
  if (!env_armed) {
    exec::InferenceEngine::Stats v1_stats =
        v1->model->inference_engine()->stats();
    exec::InferenceEngine::Stats v2_stats =
        v2->model->inference_engine()->stats();
    EXPECT_GE(v1_stats.compiles, 1);
    EXPECT_GE(v2_stats.compiles, 1);  // retraced, not inherited
    EXPECT_GE(v2_stats.runs, 1);
    EXPECT_EQ(v1_stats.poisoned, 0);
    EXPECT_EQ(v2_stats.poisoned, 0);
  }
}

// -- Static serving == tape serving, end to end -------------------------------

// Two full servers over bit-identical weights, one forced to the tape and
// one to the static executor: every forecast must agree bitwise through the
// whole serving stack (sanitizer, batcher, normalizer round-trip).
TEST(ExecutorChaosTest, StaticServerMatchesTapeServerBitwise) {
  const bool env_armed = core::failpoint_internal::AnyArmed();
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig();

  serving::ServerOptions tape_options = StaticServerOptions();
  tape_options.executor_mode = training::ExecutorMode::kTape;
  ServerFixture tape_fixture(config, norm, tape_options);
  ServerFixture static_fixture(config, norm, StaticServerOptions());
  ASSERT_TRUE(tape_fixture.server->Start().ok());
  ASSERT_TRUE(static_fixture.server->Start().ok());

  for (int64_t first_step : {0, 5, 11}) {
    t::Tensor a = MustForecast(tape_fixture.server.get(), *dataset, first_step);
    t::Tensor b =
        MustForecast(static_fixture.server.get(), *dataset, first_step);
    ASSERT_TRUE(a.defined());
    ASSERT_TRUE(b.defined());
    ASSERT_TRUE(a.shape() == b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.size()) * sizeof(float)),
              0)
        << "first_step=" << first_step;
  }
  if (!env_armed) {
    // The static server really served static (not via silent tape fallback).
    EXPECT_GE(static_fixture.engine()->stats().runs, 3);
    EXPECT_EQ(tape_fixture.engine()->stats().runs, 0);
  }
}

// -- Sharded static serving ---------------------------------------------------

// With spatial mixing off the sharding exactness guarantee must survive the
// executor swap: a K=3 fleet of shard-sliced static executors answers with
// the bit-identical forecast of the unsharded static server (each shard
// model traces its own sliced program; nothing is shared or re-derived).
TEST(ExecutorChaosTest, ShardSlicedStaticExecutorsMatchUnshardedBitwise) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig(/*spatial_mixing=*/false);

  ServerFixture full(config, norm, StaticServerOptions());
  ASSERT_TRUE(full.server->Start().ok());

  model_ns::SstbanModel full_model(config);
  sharding::FleetOptions fleet_options;
  fleet_options.partition.num_shards = 3;
  fleet_options.server = StaticServerOptions();
  fleet_options.router.shard_timeout = std::chrono::milliseconds(3000);
  auto fleet_or =
      sharding::ShardedFleet::Create(*dataset->graph, full_model, norm,
                                     fleet_options);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<sharding::ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  for (int64_t first_step : {0, 7}) {
    t::Tensor window =
        t::Slice(dataset->signals, 0, first_step, kSteps).Clone();

    t::Tensor unsharded = MustForecast(full.server.get(), *dataset, first_step);
    ASSERT_TRUE(unsharded.defined());

    sharding::ShardedRequest request;
    request.recent = window;
    request.first_step = first_step;
    auto submitted = fleet->router().Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    sharding::ShardedResult result = submitted.value().get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().failed_sensors.empty());

    const t::Tensor& sharded = result.value().forecast;
    ASSERT_TRUE(unsharded.shape() == sharded.shape());
    EXPECT_EQ(std::memcmp(unsharded.data(), sharded.data(),
                          static_cast<size_t>(unsharded.size()) * sizeof(float)),
              0)
        << "first_step=" << first_step;
  }
  fleet->Shutdown();
}

}  // namespace
}  // namespace sstban

// Tests for the runtime-dispatched SIMD kernel layer (tensor/simd/kernels.h)
// and the tiled GEMM's edge-tile handling:
//   - odd M/N/K shapes (full-tile + remainder split in the micro-kernel)
//     against a naive triple-loop reference, on every available tier;
//   - bitwise 1-vs-8-thread determinism per tier;
//   - the elementwise kernels are exactly rounded, so the scalar and AVX2
//     tables agree bit for bit (only GEMM/softmax may differ across tiers);
//   - dispatch + the SSTBAN_SIMD kill-switch override machinery.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cpu_features.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/simd/kernels.h"
#include "tensor/tensor.h"

namespace sstban {
namespace {

namespace t = ::sstban::tensor;
using core::SimdLevel;

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (t::simd::internal::Avx2Kernels() != nullptr &&
      core::DetectCpuFeatures().avx2 && core::DetectCpuFeatures().fma) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

// RAII tier override so a failing assertion cannot leak a forced level.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    previous_ = core::ActiveSimdLevel();
    active_ = core::SetSimdLevelForTesting(level);
  }
  ~ScopedSimdLevel() { core::SetSimdLevelForTesting(previous_); }
  SimdLevel active() const { return active_; }

 private:
  SimdLevel previous_;
  SimdLevel active_;
};

t::Tensor NaiveMatmul(const t::Tensor& a, const t::Tensor& b, bool ta,
                      bool tb) {
  int64_t m = ta ? a.dim(1) : a.dim(0);
  int64_t k = ta ? a.dim(0) : a.dim(1);
  int64_t n = tb ? b.dim(0) : b.dim(1);
  t::Tensor c = t::Tensor::Zeros(t::Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        float av = ta ? pa[p * m + i] : pa[i * k + p];
        float bv = tb ? pb[j * k + p] : pb[p * n + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      pc[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

void ExpectClose(const t::Tensor& got, const t::Tensor& want,
                 const std::string& what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (int64_t i = 0; i < got.size(); ++i) {
    float g = got.data()[i], w = want.data()[i];
    // fp32 tiled accumulation vs double-accumulated reference: allow a few
    // ulps scaled by the magnitude of the dot products involved.
    float tol = 1e-4f + 2e-5f * std::fabs(w);
    ASSERT_NEAR(g, w, tol) << what << " element " << i;
  }
}

// -- Edge-tile regression: odd M/N/K vs the naive reference ------------------

TEST(SimdGemmTest, OddShapesMatchNaiveReferenceOnEveryTier) {
  // Shapes straddling the micro-tile sizes (scalar MR=4, AVX2 MR=6/NR=16)
  // and the KC=256/NC=256 cache blocks, so every full-tile + remainder
  // combination of the split loops executes.
  struct Case { int64_t m, k, n; };
  const std::vector<Case> cases = {
      {1, 1, 1},   {3, 5, 7},    {5, 3, 17},  {6, 8, 16},  {7, 9, 15},
      {13, 31, 33}, {63, 65, 31}, {65, 257, 19}, {100, 129, 47},
  };
  core::Rng rng(17);
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel scoped(level);
    ASSERT_EQ(scoped.active(), level);
    for (const Case& c : cases) {
      for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
          SCOPED_TRACE(std::string(core::SimdLevelName(level)) + " m=" +
                       std::to_string(c.m) + " k=" + std::to_string(c.k) +
                       " n=" + std::to_string(c.n) + (ta ? " ta" : "") +
                       (tb ? " tb" : ""));
          t::Tensor a = t::Tensor::RandomNormal(
              ta ? t::Shape{c.k, c.m} : t::Shape{c.m, c.k}, rng);
          t::Tensor b = t::Tensor::RandomNormal(
              tb ? t::Shape{c.n, c.k} : t::Shape{c.k, c.n}, rng);
          t::Tensor got = t::Bmm(a.Reshape(t::Shape{1, a.dim(0), a.dim(1)}),
                                 b.Reshape(t::Shape{1, b.dim(0), b.dim(1)}),
                                 ta, tb)
                              .Reshape(t::Shape{c.m, c.n});
          ExpectClose(got, NaiveMatmul(a, b, ta, tb), "bmm");
        }
      }
    }
  }
}

TEST(SimdGemmTest, OddShapesAreBitwiseDeterministicOneVsEightThreads) {
  core::Rng rng(29);
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel scoped(level);
    for (int64_t m : {1, 7, 63, 100, 130}) {
      SCOPED_TRACE(std::string(core::SimdLevelName(level)) + " m=" +
                   std::to_string(m));
      t::Tensor a = t::Tensor::RandomNormal(t::Shape{m, 65}, rng);
      t::Tensor b = t::Tensor::RandomNormal(t::Shape{65, 33}, rng);
      core::SetParallelismCapForTesting(1);
      t::Tensor seq = t::Matmul(a, b);
      core::SetParallelismCapForTesting(8);
      t::Tensor par = t::Matmul(a, b);
      core::SetParallelismCapForTesting(0);
      ASSERT_EQ(std::memcmp(seq.data(), par.data(),
                            static_cast<size_t>(seq.size()) * sizeof(float)),
                0);
    }
  }
}

// -- Elementwise kernels: exactly rounded, so identical across tiers ---------

TEST(SimdKernelsTest, ElementwiseKernelsAgreeBitwiseAcrossTiers) {
  const t::simd::SimdKernels& scalar = t::simd::internal::ScalarKernels();
  const t::simd::SimdKernels* avx2 = t::simd::internal::Avx2Kernels();
  if (avx2 == nullptr || !core::DetectCpuFeatures().avx2) {
    GTEST_SKIP() << "AVX2 table not available on this machine";
  }
  core::Rng rng(5);
  // Lengths around the 8-lane vector width so remainders are exercised.
  for (int64_t n : {1, 7, 8, 9, 31, 64, 1000, 1027}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    t::Tensor a = t::Tensor::RandomNormal(t::Shape{n}, rng);
    t::Tensor b = t::Tensor::RandomNormal(t::Shape{n}, rng);
    t::Tensor o1 = t::Tensor::Empty(t::Shape{n});
    t::Tensor o2 = t::Tensor::Empty(t::Shape{n});
    auto expect_same = [&](const char* what) {
      ASSERT_EQ(std::memcmp(o1.data(), o2.data(),
                            static_cast<size_t>(n) * sizeof(float)),
                0)
          << what;
    };
    scalar.add(a.data(), b.data(), o1.data(), n);
    avx2->add(a.data(), b.data(), o2.data(), n);
    expect_same("add");
    scalar.mul(a.data(), b.data(), o1.data(), n);
    avx2->mul(a.data(), b.data(), o2.data(), n);
    expect_same("mul");
    scalar.add_scalar(a.data(), 0.37f, o1.data(), n);
    avx2->add_scalar(a.data(), 0.37f, o2.data(), n);
    expect_same("add_scalar");
    scalar.mul_scalar(a.data(), -1.91f, o1.data(), n);
    avx2->mul_scalar(a.data(), -1.91f, o2.data(), n);
    expect_same("mul_scalar");
    scalar.relu(a.data(), o1.data(), n);
    avx2->relu(a.data(), o2.data(), n);
    expect_same("relu");
    EXPECT_EQ(scalar.reduce_max(a.data(), n), avx2->reduce_max(a.data(), n));
  }
}

TEST(SimdKernelsTest, SoftmaxRowMatchesReferenceWithinTolerance) {
  core::Rng rng(11);
  for (SimdLevel level : AvailableLevels()) {
    for (int64_t n : {1, 5, 8, 17, 200, 513}) {
      SCOPED_TRACE(std::string(core::SimdLevelName(level)) + " n=" +
                   std::to_string(n));
      const t::simd::SimdKernels& ks = t::simd::KernelsFor(level);
      t::Tensor a = t::Tensor::RandomUniform(t::Shape{n}, rng, -10.f, 10.f);
      t::Tensor out = t::Tensor::Empty(t::Shape{n});
      ks.softmax_row(a.data(), out.data(), n);
      // Reference in double precision.
      double mx = a.data()[0];
      for (int64_t i = 1; i < n; ++i) mx = std::max(mx, (double)a.data()[i]);
      double denom = 0.0;
      for (int64_t i = 0; i < n; ++i) denom += std::exp(a.data()[i] - mx);
      double total = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        double want = std::exp(a.data()[i] - mx) / denom;
        // The AVX2 exp is ~2 ulp; softmax normalization keeps the relative
        // error of the same order.
        ASSERT_NEAR(out.data()[i], want, 1e-6 + 1e-5 * want) << "i=" << i;
        total += out.data()[i];
      }
      EXPECT_NEAR(total, 1.0, 1e-5);
      // In-place operation must give the identical bytes.
      t::Tensor inplace = a.Clone();
      ks.softmax_row(inplace.data(), inplace.data(), n);
      EXPECT_EQ(std::memcmp(inplace.data(), out.data(),
                            static_cast<size_t>(n) * sizeof(float)),
                0);
    }
  }
}

TEST(SimdKernelsTest, ExpSumMatchesSoftmaxPieces) {
  core::Rng rng(13);
  for (SimdLevel level : AvailableLevels()) {
    const t::simd::SimdKernels& ks = t::simd::KernelsFor(level);
    for (int64_t n : {3, 8, 40}) {
      t::Tensor a = t::Tensor::RandomNormal(t::Shape{n}, rng);
      float m = ks.reduce_max(a.data(), n);
      t::Tensor e = t::Tensor::Empty(t::Shape{n});
      double sum = ks.exp_sum(a.data(), m, e.data(), n);
      double check = 0.0;
      for (int64_t i = 0; i < n; ++i) check += e.data()[i];
      EXPECT_NEAR(sum, check, 1e-6 * std::max(1.0, check));
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_NEAR(e.data()[i], std::exp(a.data()[i] - m),
                    1e-6 + 1e-5 * std::exp(a.data()[i] - m));
      }
    }
  }
}

// -- Dispatch machinery -------------------------------------------------------

TEST(SimdDispatchTest, TablesCarryTheirNames) {
  EXPECT_STREQ(t::simd::KernelsFor(SimdLevel::kScalar).name, "scalar");
  EXPECT_EQ(t::simd::KernelsFor(SimdLevel::kScalar).gemm_mr, 4);
  if (t::simd::internal::Avx2Kernels() != nullptr) {
    EXPECT_STREQ(t::simd::internal::Avx2Kernels()->name, "avx2");
  }
}

TEST(SimdDispatchTest, ForcedScalarLevelRoutesTheActiveTable) {
  ScopedSimdLevel scoped(SimdLevel::kScalar);
  EXPECT_EQ(scoped.active(), SimdLevel::kScalar);
  EXPECT_STREQ(t::simd::Kernels().name, "scalar");
}

TEST(SimdDispatchTest, Avx2RequestDegradesGracefullyWithoutHardware) {
  // On AVX2 hardware the request sticks; elsewhere it must be ignored and
  // the active level stays scalar — never a crash or an invalid table.
  SimdLevel previous = core::ActiveSimdLevel();
  SimdLevel got = core::SetSimdLevelForTesting(SimdLevel::kAvx2);
  const core::CpuFeatures& f = core::DetectCpuFeatures();
  if (f.avx2 && f.fma && t::simd::internal::Avx2Kernels() != nullptr) {
    EXPECT_EQ(got, SimdLevel::kAvx2);
    EXPECT_STREQ(t::simd::Kernels().name, "avx2");
  } else {
    EXPECT_EQ(got, SimdLevel::kScalar);
    EXPECT_STREQ(t::simd::Kernels().name, "scalar");
  }
  core::SetSimdLevelForTesting(previous);
}

}  // namespace
}  // namespace sstban

// Chaos tests for the sharded serving fleet: killing or wedging one shard
// must degrade only that shard's sensors (blast-radius isolation), and
// every fleet request must reach exactly one terminal status under every
// fault schedule — including the ambient SSTBAN_FAILPOINTS schedules the
// CI chaos matrix arms for this whole binary.

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/failpoint.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "sharding/fleet.h"
#include "sharding/router.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/model.h"

namespace sstban::sharding {
namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 12;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 12;

std::shared_ptr<data::TrafficDataset> SmallWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 3;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 6;
  config.seed = 31;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig SmallConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.spatial_mixing = false;  // node-local receptive field
  config.seed = 5;
  return config;
}

FleetOptions ChaosFleetOptions(int64_t shards) {
  FleetOptions options;
  options.partition.num_shards = shards;
  options.server.input_len = kSteps;
  options.server.output_len = kSteps;
  options.server.steps_per_day = kStepsPerDay;
  options.server.num_nodes = kNodes;
  options.server.num_features = kFeatures;
  options.server.max_batch = 4;
  options.server.max_wait = std::chrono::milliseconds(2);
  options.server.queue_capacity = 64;
  // Tight budgets so a wedged shard is detected and timed out quickly.
  options.server.stall_budget = std::chrono::milliseconds(200);
  options.router.shard_timeout = std::chrono::milliseconds(600);
  options.router.gather_grace = std::chrono::milliseconds(150);
  return options;
}

// Fleet-level exactly-one-terminal invariant: an Ok answer may carry NaN
// only on rows it *declares* failed; errors must be client-visible codes.
// std::promise enforces "at most one" terminal; future.get() returning at
// all proves "at least one".
bool AllowedShardedTerminal(const ShardedResult& result) {
  if (result.ok()) {
    const ShardedResponse& response = result.value();
    std::set<int64_t> failed(response.failed_sensors.begin(),
                             response.failed_sensors.end());
    const int64_t q = response.forecast.dim(0);
    const int64_t s = response.forecast.dim(1);
    const int64_t c = response.forecast.dim(2);
    for (int64_t i = 0; i < s; ++i) {
      const bool declared_failed = failed.count(response.sensors[i]) > 0;
      for (int64_t step = 0; step < q; ++step) {
        for (int64_t f = 0; f < c; ++f) {
          const bool nan =
              std::isnan(response.forecast.data()[(step * s + i) * c + f]);
          if (nan != declared_failed) return false;
        }
      }
    }
    return true;
  }
  switch (result.status().code()) {
    case core::StatusCode::kUnavailable:
    case core::StatusCode::kDeadlineExceeded:
    case core::StatusCode::kInvalidArgument:
      return true;
    default:
      return false;
  }
}

// A model whose forward pass blocks until released (for wedging one shard).
class GateModel : public training::TrafficModel {
 public:
  ag::Variable Predict(const t::Tensor& x_norm,
                       const data::Batch& batch) override {
    (void)batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    return ag::Variable(t::Tensor::Zeros(
        t::Shape{x_norm.dim(0), kSteps, x_norm.dim(2), x_norm.dim(3)}));
  }
  std::string name() const override { return "Gate"; }
  void Release() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_, release_cv_;
  int entered_ = 0;
  bool released_ = false;
};

struct ScopedFailpoints {
  explicit ScopedFailpoints(const std::string& list) {
    if (!list.empty()) {
      SSTBAN_CHECK(core::FailPoint::SetFromList(list).ok()) << list;
    }
  }
  ~ScopedFailpoints() { core::FailPoint::ClearAll(); }
};

TEST(ShardedChaosTest, KilledShardDegradesOnlyItsOwnSensors) {
  // Blast-radius assertions only hold in a quiet environment; under an
  // ambient CI failpoint schedule every shard may legitimately degrade, so
  // this test then checks the terminal invariant only.
  const bool quiet = !core::failpoint_internal::AnyArmed();

  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig();
  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       ChaosFleetOptions(/*shards=*/4));
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  constexpr int64_t kVictim = 1;
  fleet->worker(kVictim, 0).Shutdown();
  std::set<int64_t> victim_sensors(
      fleet->plan().shards[kVictim].owned.begin(),
      fleet->plan().shards[kVictim].owned.end());

  constexpr int kClients = 3;
  constexpr int kPerClient = 5;
  std::atomic<int> terminal{0}, bad{0}, isolation_violations{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        ShardedRequest request;
        int64_t start = (c * kPerClient + r) % 24;
        request.recent =
            t::Slice(dataset->signals, 0, start, kSteps).Clone();
        request.first_step = start;
        auto submitted = fleet->router().Submit(std::move(request));
        if (!submitted.ok()) {
          ShardedResult as_result(submitted.status());
          (AllowedShardedTerminal(as_result) ? terminal : bad).fetch_add(1);
          continue;
        }
        ShardedResult result = submitted.value().get();
        (AllowedShardedTerminal(result) ? terminal : bad).fetch_add(1);
        if (quiet) {
          // Exactly the victim's sensors fail; every other sensor gets a
          // real forecast.
          if (!result.ok()) {
            isolation_violations.fetch_add(1);
            continue;
          }
          std::set<int64_t> failed(result.value().failed_sensors.begin(),
                                   result.value().failed_sensors.end());
          if (failed != victim_sensors) isolation_violations.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(terminal.load(), kClients * kPerClient);
  if (quiet) {
    EXPECT_EQ(isolation_violations.load(), 0);
  }
  // Healthy shards stayed healthy.
  for (int64_t s = 0; s < 4; ++s) {
    if (s == kVictim) continue;
    EXPECT_TRUE(fleet->worker(s, 0).CheckHealth().ready) << "shard " << s;
  }
  fleet->Shutdown();
}

TEST(ShardedChaosTest, WedgedShardIsIsolatedAndEveryRequestTerminates) {
  const bool quiet = !core::failpoint_internal::AnyArmed();

  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig();
  model_ns::SstbanModel full_model(config);
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       ChaosFleetOptions(/*shards=*/4));
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  // Wedge shard 2 by hot-swapping a blocking model into its registry — the
  // next batch hangs in Predict until released, tripping the watchdog.
  constexpr int64_t kVictim = 2;
  auto gate = std::make_unique<GateModel>();
  GateModel* gate_ptr = gate.get();
  fleet->worker(kVictim, 0).registry().Install(std::move(gate));
  std::set<int64_t> victim_sensors(
      fleet->plan().shards[kVictim].owned.begin(),
      fleet->plan().shards[kVictim].owned.end());

  int terminal = 0, bad = 0, isolation_violations = 0;
  for (int r = 0; r < 6; ++r) {
    ShardedRequest request;
    request.recent = t::Slice(dataset->signals, 0, r, kSteps).Clone();
    request.first_step = r;
    auto submitted = fleet->router().Submit(std::move(request));
    if (!submitted.ok()) {
      ShardedResult as_result(submitted.status());
      (AllowedShardedTerminal(as_result) ? terminal : bad) += 1;
      continue;
    }
    ShardedResult result = submitted.value().get();
    (AllowedShardedTerminal(result) ? terminal : bad) += 1;
    if (quiet && result.ok()) {
      for (int64_t sensor : result.value().failed_sensors) {
        if (!victim_sensors.count(sensor)) ++isolation_violations;
      }
    }
  }
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(terminal, 6);
  if (quiet) {
    EXPECT_EQ(isolation_violations, 0);
  }

  gate_ptr->Release();
  fleet->Shutdown();
}

TEST(ShardedChaosTest, EveryRequestTerminatesUnderEveryFaultSchedule) {
  const char* kSchedules[] = {
      "",  // control
      "serve_batch_run=error(Internal)",
      "serve_batch_run=delay(15)",
      "serve_enqueue=error(Unavailable)@2",
      "registry_get=error(Unavailable)@3",
      "serve_enqueue=delay(3),serve_batch_run=error(Internal)@2",
  };

  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig();
  model_ns::SstbanModel full_model(config);

  for (const char* schedule : kSchedules) {
    SCOPED_TRACE(std::string("schedule: ") + schedule);
    ScopedFailpoints fp(schedule);

    auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                         ChaosFleetOptions(/*shards=*/4));
    ASSERT_TRUE(fleet_or.ok());
    std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
    ASSERT_TRUE(fleet->Start().ok());

    constexpr int kClients = 3;
    constexpr int kPerClient = 4;
    std::atomic<int> terminal{0}, bad{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kPerClient; ++r) {
          ShardedRequest request;
          int64_t start = (c * kPerClient + r) % 24;
          request.recent =
              t::Slice(dataset->signals, 0, start, kSteps).Clone();
          request.first_step = start;
          if (r % 2 == 1) {  // narrow requests exercise subset routing
            request.sensors = {static_cast<int64_t>(c),
                               static_cast<int64_t>(kNodes - 1 - c)};
          }
          if (r % 4 == 3) {
            request.deadline = serving::Clock::now() +
                               std::chrono::milliseconds(10);
          }
          auto submitted = fleet->router().Submit(std::move(request));
          if (!submitted.ok()) {
            ShardedResult as_result(submitted.status());
            (AllowedShardedTerminal(as_result) ? terminal : bad).fetch_add(1);
            continue;
          }
          ShardedResult result = submitted.value().get();
          (AllowedShardedTerminal(result) ? terminal : bad).fetch_add(1);
        }
      });
    }
    for (std::thread& client : clients) client.join();
    fleet->Shutdown();

    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(terminal.load(), kClients * kPerClient);
  }
}

}  // namespace
}  // namespace sstban::sharding

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace sstban::tensor {
namespace {

TEST(ShapeTest, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(ShapeTest, Strides) {
  Shape s{2, 3, 4};
  std::vector<int64_t> strides = s.Strides();
  EXPECT_EQ(strides, (std::vector<int64_t>{12, 4, 1}));
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({2, 3}).ToString(), "[2, 3]");
  EXPECT_EQ(Shape{}.ToString(), "[]");
}

TEST(ShapeTest, BroadcastSameShape) {
  EXPECT_EQ(BroadcastShapes(Shape{2, 3}, Shape{2, 3}), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastExpandsOnes) {
  EXPECT_EQ(BroadcastShapes(Shape{2, 1, 4}, Shape{1, 3, 1}), Shape({2, 3, 4}));
}

TEST(ShapeTest, BroadcastRankExtension) {
  EXPECT_EQ(BroadcastShapes(Shape{4}, Shape{2, 3, 4}), Shape({2, 3, 4}));
}

TEST(TensorTest, ZerosInitialized) {
  Tensor t = Tensor::Zeros(Shape{3, 3});
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full(Shape{2, 2}, 2.5f);
  EXPECT_EQ(t.at({1, 1}), 2.5f);
  Tensor ones = Tensor::Ones(Shape{2});
  EXPECT_EQ(ones.at({0}), 1.0f);
}

TEST(TensorTest, FromVectorRowMajor) {
  Tensor t = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_EQ(t.at({1, 0}), 4.0f);
}

TEST(TensorTest, Arange) {
  Tensor t = Tensor::Arange(5);
  EXPECT_EQ(t.at({4}), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(7.5f).item(), 7.5f);
}

TEST(TensorTest, CopySharesStorage) {
  Tensor a = Tensor::Zeros(Shape{2});
  Tensor b = a;  // shallow
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 9.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Zeros(Shape{2});
  Tensor b = a.Clone();
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 0.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::Arange(6);
  Tensor b = a.Reshape(Shape{2, 3});
  b.data()[5] = 42.0f;
  EXPECT_EQ(a.at({5}), 42.0f);
  EXPECT_EQ(b.at({1, 2}), 42.0f);
}

TEST(TensorTest, CopyFromOverwrites) {
  Tensor a = Tensor::Zeros(Shape{3});
  Tensor b = Tensor::FromVector(Shape{3}, {1, 2, 3});
  a.CopyFrom(b);
  EXPECT_EQ(a.at({1}), 2.0f);
}

TEST(TensorTest, RandomUniformWithinBounds) {
  core::Rng rng(5);
  Tensor t = Tensor::RandomUniform(Shape{100}, rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.data()[i], -2.0f);
    EXPECT_LT(t.data()[i], 3.0f);
  }
}

TEST(TensorTest, RandomNormalDeterministicInSeed) {
  core::Rng rng1(5), rng2(5);
  Tensor a = Tensor::RandomNormal(Shape{10}, rng1);
  Tensor b = Tensor::RandomNormal(Shape{10}, rng2);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(TensorTest, UndefinedTensor) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.ToString(), "Tensor(undefined)");
}

TEST(TensorTest, ToVectorRoundTrip) {
  Tensor t = Tensor::FromVector(Shape{4}, {1, 2, 3, 4});
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace sstban::tensor

// Unit coverage for src/streaming: the ingest boundary (value/timestamp/
// geometry policy, zero-poison running stats, ring continuity), CUSUM drift
// detection with hysteresis, the label-free online adapter's checkpointed
// resume, and shadow-gated promotion with rollback.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/failpoint.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "streaming/drift_detector.h"
#include "streaming/online_adapter.h"
#include "streaming/promotion.h"
#include "streaming/stream_ingestor.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sstban::streaming {
namespace {

namespace t = ::sstban::tensor;
namespace ag = ::sstban::autograd;
namespace fs = std::filesystem;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kNodes = 4;
constexpr int64_t kFeatures = 1;
constexpr int64_t kSteps = 6;
constexpr int64_t kStepsPerDay = 12;

// Every suite in this file arms its own failpoints; scrub any schedule the
// CI fault matrix put in the environment so assertions stay deterministic.
class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override { core::FailPoint::ClearAll(); }
  void TearDown() override { core::FailPoint::ClearAll(); }
};
using StreamIngestorTest = StreamingTest;
using DriftDetectorTest = StreamingTest;
using OnlineAdapterTest = StreamingTest;
using PromotionTest = StreamingTest;

StreamIngestorOptions TinyIngestOptions() {
  StreamIngestorOptions options;
  options.num_nodes = kNodes;
  options.num_features = kFeatures;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = kStepsPerDay;
  return options;
}

t::Tensor FlatSlice(float value) {
  return t::Tensor::Full(t::Shape{kNodes, kFeatures}, value);
}

// -- StreamIngestor ----------------------------------------------------------

TEST_F(StreamIngestorTest, AcceptsSequentialSlicesAndAdvancesClock) {
  StreamIngestor ingestor(TinyIngestOptions());
  EXPECT_FALSE(ingestor.started());
  for (int64_t s = 7; s < 7 + kSteps; ++s) {
    ASSERT_TRUE(ingestor.Append(FlatSlice(1.0f), s).ok());
  }
  EXPECT_TRUE(ingestor.started());
  EXPECT_EQ(ingestor.size(), kSteps);
  EXPECT_EQ(ingestor.next_step(), 7 + kSteps);
  EXPECT_EQ(ingestor.accepted(), kSteps);

  int64_t first_step = -1;
  auto window = ingestor.LatestWindow(&first_step);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(first_step, 7);
  EXPECT_EQ(window.value().dim(0), kSteps);
}

TEST_F(StreamIngestorTest, RejectsGeometryChangeUntouched) {
  StreamIngestor ingestor(TinyIngestOptions());
  ASSERT_TRUE(ingestor.Append(FlatSlice(1.0f), 0).ok());

  // The growing-city shape: one extra sensor.
  t::Tensor grown = t::Tensor::Full(t::Shape{kNodes + 1, kFeatures}, 1.0f);
  core::Status status = ingestor.Append(grown, 1);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  EXPECT_EQ(ingestor.rejected_geometry(), 1);
  EXPECT_EQ(ingestor.size(), 1);
  EXPECT_EQ(ingestor.next_step(), 1);  // clock untouched
  // The stream resumes where it left off.
  EXPECT_TRUE(ingestor.Append(FlatSlice(1.0f), 1).ok());
}

TEST_F(StreamIngestorTest, RejectsRegressedGappedAndNegativeTimestamps) {
  StreamIngestor ingestor(TinyIngestOptions());
  ASSERT_TRUE(ingestor.Append(FlatSlice(1.0f), 5).ok());

  EXPECT_EQ(ingestor.Append(FlatSlice(1.0f), 5).code(),
            core::StatusCode::kOutOfRange);  // repeat
  EXPECT_EQ(ingestor.Append(FlatSlice(1.0f), 4).code(),
            core::StatusCode::kOutOfRange);  // regression
  EXPECT_EQ(ingestor.Append(FlatSlice(1.0f), 8).code(),
            core::StatusCode::kOutOfRange);  // gap
  EXPECT_EQ(ingestor.Append(FlatSlice(1.0f), -1).code(),
            core::StatusCode::kOutOfRange);  // negative
  EXPECT_EQ(ingestor.rejected_timestamps(), 4);
  EXPECT_EQ(ingestor.size(), 1);
  EXPECT_TRUE(ingestor.Append(FlatSlice(1.0f), 6).ok());
}

TEST_F(StreamIngestorTest, StrictChannelNaNCannotPoisonRunningStats) {
  StreamIngestor ingestor(TinyIngestOptions());  // strict everywhere
  core::Rng rng(11);
  for (int64_t s = 0; s < 2 * kSteps; ++s) {
    ASSERT_TRUE(
        ingestor
            .Append(t::Tensor::RandomNormal(t::Shape{kNodes, kFeatures}, rng,
                                            10.0f, 1.0f),
                    s)
            .ok());
  }
  const double mean_before = ingestor.running_mean(0);
  const double std_before = ingestor.running_stddev(0);

  t::Tensor poisoned = FlatSlice(10.0f);
  poisoned.data()[2] = std::numeric_limits<float>::quiet_NaN();
  core::Status status = ingestor.Append(poisoned, 2 * kSteps);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  EXPECT_EQ(ingestor.rejected_values(), 1);
  EXPECT_EQ(ingestor.running_mean(0), mean_before);
  EXPECT_EQ(ingestor.running_stddev(0), std_before);

  // The bad reading consumed its timestamp (the feed keeps flowing) but
  // punched a hole: retained history restarted, so no window until P fresh
  // contiguous slices arrive.
  EXPECT_EQ(ingestor.next_step(), 2 * kSteps + 1);
  EXPECT_EQ(ingestor.size(), 0);
  EXPECT_EQ(ingestor.LatestWindow(nullptr).status().code(),
            core::StatusCode::kNotFound);
  for (int64_t s = 2 * kSteps + 1; s < 3 * kSteps + 1; ++s) {
    ASSERT_TRUE(ingestor.Append(FlatSlice(10.0f), s).ok());
  }
  EXPECT_TRUE(ingestor.LatestWindow(nullptr).ok());
}

TEST_F(StreamIngestorTest, DegradableChannelScrubsAndExcludesFromStats) {
  StreamIngestorOptions options = TinyIngestOptions();
  options.sanitizer.degradable_channels = {0};
  // Twin ingestor fed the post-scrub values (zeros) as if they were real
  // readings: the only difference from the test ingestor is stat exclusion.
  StreamIngestor ingestor(options);
  StreamIngestor twin(options);
  for (int64_t s = 0; s < kSteps; ++s) {
    ASSERT_TRUE(ingestor.Append(FlatSlice(4.0f), s).ok());
    ASSERT_TRUE(twin.Append(FlatSlice(4.0f), s).ok());
  }

  t::Tensor partial = FlatSlice(4.0f);
  partial.data()[1] = std::numeric_limits<float>::infinity();
  t::Tensor scrubbed_equivalent = FlatSlice(4.0f);
  scrubbed_equivalent.data()[1] = 0.0f;
  ASSERT_TRUE(ingestor.Append(partial, kSteps).ok());
  ASSERT_TRUE(twin.Append(scrubbed_equivalent, kSteps).ok());
  EXPECT_EQ(ingestor.scrubbed_positions(), 1);
  EXPECT_EQ(ingestor.size(), kSteps + 1);  // slice kept, continuity intact
  // The scrubbed zero was excluded from the running stats (the twin, which
  // ingested it as a value, was dragged toward zero), and everything that
  // did flow into the stats stayed finite.
  EXPECT_GT(ingestor.running_mean(0), twin.running_mean(0));
  EXPECT_TRUE(std::isfinite(ingestor.running_mean(0)));
  EXPECT_TRUE(std::isfinite(ingestor.running_stddev(0)));
}

TEST_F(StreamIngestorTest, RunningNormalizerTracksLevelShift) {
  StreamIngestorOptions options = TinyIngestOptions();
  options.stats_halflife_slices = 2.0;  // fast stats for the test
  StreamIngestor ingestor(options);
  EXPECT_EQ(ingestor.RunningNormalizer().status().code(),
            core::StatusCode::kFailedPrecondition);

  core::Rng rng(3);
  int64_t s = 0;
  for (; s < 40; ++s) {
    ASSERT_TRUE(
        ingestor
            .Append(t::Tensor::RandomNormal(t::Shape{kNodes, kFeatures}, rng,
                                            1.0f, 0.1f),
                    s)
            .ok());
  }
  EXPECT_NEAR(ingestor.running_mean(0), 1.0, 0.15);
  for (; s < 80; ++s) {  // the regime shifts: recalibrated sensors
    ASSERT_TRUE(
        ingestor
            .Append(t::Tensor::RandomNormal(t::Shape{kNodes, kFeatures}, rng,
                                            5.0f, 0.1f),
                    s)
            .ok());
  }
  EXPECT_NEAR(ingestor.running_mean(0), 5.0, 0.15);
  ASSERT_TRUE(ingestor.RunningNormalizer().ok());
}

TEST_F(StreamIngestorTest, RingWrapsAndSnapshotKeepsCalendarConsistent) {
  StreamIngestorOptions options = TinyIngestOptions();
  options.capacity = 2 * kSteps;  // minimum: one P+Q span
  StreamIngestor ingestor(options);
  const int64_t start = kStepsPerDay + 3;  // tod 3, dow 1 at stream start
  const int64_t total = 5 * kSteps;        // wraps the ring twice
  for (int64_t i = 0; i < total; ++i) {
    ASSERT_TRUE(
        ingestor.Append(FlatSlice(static_cast<float>(i)), start + i).ok());
  }
  EXPECT_EQ(ingestor.size(), 2 * kSteps);

  auto snapshot = ingestor.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const data::TrafficDataset& dataset = snapshot.value();
  ASSERT_EQ(dataset.num_steps(), 2 * kSteps);
  for (int64_t i = 0; i < dataset.num_steps(); ++i) {
    const int64_t step = start + total - 2 * kSteps + i;
    EXPECT_FLOAT_EQ(dataset.signals.data()[i * kNodes * kFeatures],
                    static_cast<float>(total - 2 * kSteps + i));
    EXPECT_EQ(dataset.time_of_day[i], step % kStepsPerDay);
    EXPECT_EQ(dataset.day_of_week[i], (step / kStepsPerDay) % 7);
  }
}

TEST_F(StreamIngestorTest, IngestAppendFailpointPropagatesAndLeavesNoTrace) {
  StreamIngestor ingestor(TinyIngestOptions());
  ASSERT_TRUE(
      core::FailPoint::Set("ingest_append", "error(kUnavailable)@1").ok());
  EXPECT_EQ(ingestor.Append(FlatSlice(1.0f), 0).code(),
            core::StatusCode::kUnavailable);
  EXPECT_EQ(ingestor.size(), 0);
  EXPECT_EQ(ingestor.accepted(), 0);
  EXPECT_FALSE(ingestor.started());
  EXPECT_TRUE(ingestor.Append(FlatSlice(1.0f), 0).ok());
}

// -- DriftDetector -----------------------------------------------------------

DriftDetectorOptions TinyDriftOptions() {
  DriftDetectorOptions options;
  options.warmup = 16;
  options.confirm = 3;
  options.threshold_sigma = 8.0;
  options.cooldown = 4;
  return options;
}

TEST_F(DriftDetectorTest, StableUnderBaselineNoise) {
  DriftDetector detector(TinyDriftOptions());
  core::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    DriftState state =
        detector.Observe(0, 1.0 + 0.1 * rng.NextGaussian());
    EXPECT_NE(state, DriftState::kDrift);
  }
  EXPECT_EQ(detector.state(0), DriftState::kStable);
  EXPECT_NEAR(detector.baseline_mean(0), 1.0, 0.1);
}

TEST_F(DriftDetectorTest, SingleSpikeEvenInfiniteDoesNotConfirm) {
  DriftDetector detector(TinyDriftOptions());
  core::Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    detector.Observe(0, 1.0 + 0.1 * rng.NextGaussian());
  }
  // One absurd error — a breaker trip, one batch served by the fallback
  // chain. Winsorization caps its contribution below the trip threshold,
  // and the hysteresis streak cannot build from one observation.
  detector.Observe(0, std::numeric_limits<double>::infinity());
  EXPECT_NE(detector.state(0), DriftState::kDrift);
  for (int i = 0; i < 20; ++i) {
    detector.Observe(0, 1.0 + 0.1 * rng.NextGaussian());
  }
  EXPECT_EQ(detector.state(0), DriftState::kStable);
}

TEST_F(DriftDetectorTest, SustainedShiftConfirmsAndLatches) {
  DriftDetector detector(TinyDriftOptions());
  core::Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    detector.Observe(0, 1.0 + 0.1 * rng.NextGaussian());
  }
  DriftState state = DriftState::kStable;
  int to_confirm = 0;
  while (state != DriftState::kDrift && to_confirm < 200) {
    state = detector.Observe(0, 3.0 + 0.1 * rng.NextGaussian());
    ++to_confirm;
  }
  EXPECT_EQ(state, DriftState::kDrift);
  EXPECT_GE(detector.observations_to_confirm(0), TinyDriftOptions().confirm);
  // Latched: even good errors do not clear a confirmed drift.
  EXPECT_EQ(detector.Observe(0, 1.0), DriftState::kDrift);

  detector.ResetGroup(0);
  EXPECT_EQ(detector.state(0), DriftState::kCooldown);
  for (int i = 0; i < 60; ++i) {
    detector.Observe(0, 3.0 + 0.1 * rng.NextGaussian());
  }
  // After cooldown the baseline re-learned at the new level: stable again.
  EXPECT_EQ(detector.state(0), DriftState::kStable);
}

TEST_F(DriftDetectorTest, GroupsAreIndependent) {
  DriftDetectorOptions options = TinyDriftOptions();
  options.num_groups = 2;
  DriftDetector detector(options);
  core::Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    detector.Observe(0, 1.0 + 0.05 * rng.NextGaussian());
    detector.Observe(1, 1.0 + 0.05 * rng.NextGaussian());
  }
  for (int i = 0; i < 60; ++i) detector.Observe(1, 4.0);
  EXPECT_EQ(detector.state(0), DriftState::kStable);
  EXPECT_EQ(detector.state(1), DriftState::kDrift);
}

// -- OnlineAdapter -----------------------------------------------------------

model_ns::SstbanConfig TinyModelConfig(uint64_t seed = 1) {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.seed = seed;
  return config;
}

std::shared_ptr<data::TrafficDataset> TinyWorld(uint64_t seed = 50) {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 2;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 4;
  config.seed = seed;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<int64_t> FirstIndices(int64_t n) {
  std::vector<int64_t> indices(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
  return indices;
}

bool ParamsBitwiseEqual(const training::TrafficModel& a,
                        const training::TrafficModel& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    const t::Tensor& ta = pa[i].second.value();
    const t::Tensor& tb = pb[i].second.value();
    if (!(ta.shape() == tb.shape())) return false;
    if (std::memcmp(ta.data(), tb.data(),
                    static_cast<size_t>(ta.size()) * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

TEST_F(OnlineAdapterTest, RunsLabelFreeStepsAndReportsLosses) {
  auto dataset = TinyWorld();
  data::WindowDataset windows(dataset, kSteps, kSteps);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanModel model(TinyModelConfig());

  OnlineAdapterOptions options;
  options.num_steps = 4;
  options.batch_size = 4;
  auto report = OnlineAdapter(options).Adapt(&model, windows,
                                             FirstIndices(10), normalizer);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().steps_run, 4);
  EXPECT_EQ(report.value().step_loss.size(), 4u);
  for (double loss : report.value().step_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  EXPECT_TRUE(report.value().resumed_from.empty());
}

TEST_F(OnlineAdapterTest, InterruptedRoundResumesBitwiseIdentical) {
  auto dataset = TinyWorld();
  data::WindowDataset windows(dataset, kSteps, kSteps);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);

  OnlineAdapterOptions options;
  options.num_steps = 6;
  options.batch_size = 4;
  options.checkpoint_every_steps = 2;

  // Reference: one uninterrupted round.
  model_ns::SstbanModel reference(TinyModelConfig(9));
  options.checkpoint_dir = FreshDir("adapt_ref");
  ASSERT_TRUE(OnlineAdapter(options)
                  .Adapt(&reference, windows, FirstIndices(12), normalizer)
                  .ok());

  // Interrupted: an injected fault kills the round after step 4 (the 5th
  // hit of adapt_step), past the step-4 checkpoint.
  model_ns::SstbanModel interrupted(TinyModelConfig(9));
  options.checkpoint_dir = FreshDir("adapt_cut");
  ASSERT_TRUE(
      core::FailPoint::Set("adapt_step", "error(kUnavailable)@5").ok());
  auto cut = OnlineAdapter(options).Adapt(&interrupted, windows,
                                          FirstIndices(12), normalizer);
  EXPECT_EQ(cut.status().code(), core::StatusCode::kUnavailable);
  core::FailPoint::ClearAll();

  // Resume in a *fresh* model instance (a restarted process would have one):
  // everything flows from the checkpoint, nothing from the dead round.
  model_ns::SstbanModel resumed(TinyModelConfig(9));
  auto report = OnlineAdapter(options).Adapt(&resumed, windows,
                                             FirstIndices(12), normalizer);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().start_step, 4);
  EXPECT_FALSE(report.value().resumed_from.empty());
  EXPECT_TRUE(ParamsBitwiseEqual(reference, resumed))
      << "resumed weights diverged from the uninterrupted round";
}

TEST_F(OnlineAdapterTest, CheckpointWriteFaultIsSurvivable) {
  auto dataset = TinyWorld();
  data::WindowDataset windows(dataset, kSteps, kSteps);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanModel model(TinyModelConfig());

  OnlineAdapterOptions options;
  options.num_steps = 4;
  options.batch_size = 4;
  options.checkpoint_every_steps = 2;
  options.checkpoint_dir = FreshDir("adapt_ckpt_fault");
  // Every checkpoint write fails; the round must still complete — the
  // checkpoint layer is a safety net, not a dependency.
  ASSERT_TRUE(
      core::FailPoint::Set("adapt_ckpt_write", "error(kIoError)").ok());
  auto report =
      OnlineAdapter(options).Adapt(&model, windows, FirstIndices(10),
                                   normalizer);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().steps_run, 4);
}

// A trainable model with no label-free objective cannot adapt online.
class LabeledOnlyModel : public training::TrafficModel {
 public:
  LabeledOnlyModel() {
    bias_ = RegisterParameter("bias", t::Tensor::Zeros(t::Shape{1}));
  }
  ag::Variable Predict(const t::Tensor& x_norm,
                       const data::Batch& batch) override {
    return ag::Variable(t::Tensor::Full(
        t::Shape{x_norm.dim(0), batch.output_len(), x_norm.dim(2),
                 x_norm.dim(3)},
        bias_.value().data()[0]));
  }
  std::string name() const override { return "LabeledOnly"; }

 private:
  ag::Variable bias_;
};

TEST_F(OnlineAdapterTest, ModelWithoutSelfSupervisedObjectiveIsRejected) {
  auto dataset = TinyWorld();
  data::WindowDataset windows(dataset, kSteps, kSteps);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  LabeledOnlyModel model;
  auto report = OnlineAdapter(OnlineAdapterOptions{}).Adapt(
      &model, windows, FirstIndices(8), normalizer);
  EXPECT_EQ(report.status().code(), core::StatusCode::kFailedPrecondition);
}

// -- ShadowEvaluator / PromotionGate ----------------------------------------

// Forecasts a constant everywhere, so the shadow MAE is exactly
// |bias - truth| and promotion arithmetic is fully controlled by the test.
class BiasModel : public training::TrafficModel {
 public:
  explicit BiasModel(float bias = 0.0f) {
    bias_ = RegisterParameter("bias", t::Tensor::Full(t::Shape{1}, bias));
  }
  ag::Variable Predict(const t::Tensor& x_norm,
                       const data::Batch& batch) override {
    return ag::Variable(t::Tensor::Full(
        t::Shape{x_norm.dim(0), batch.output_len(), x_norm.dim(2),
                 x_norm.dim(3)},
        bias_.value().data()[0]));
  }
  std::string name() const override { return "Bias"; }
  float bias() const { return bias_.value().data()[0]; }

 private:
  ag::Variable bias_;
};

struct PromotionRig {
  std::shared_ptr<data::TrafficDataset> dataset;
  std::unique_ptr<data::WindowDataset> windows;
  data::Normalizer normalizer =
      data::Normalizer::FromMoments({0.0f}, {1.0f});  // denorm = identity
  std::unique_ptr<serving::ModelRegistry> registry;
  serving::ModelRegistry::ModelFactory factory;
  std::vector<int64_t> shadow_indices = {0, 1, 2};
};

// Truth is constant 3.0 everywhere: BiasModel(b) scores MAE |b - 3|.
PromotionRig MakePromotionRig() {
  PromotionRig rig;
  data::TrafficDataset dataset;
  dataset.name = "const";
  dataset.steps_per_day = kStepsPerDay;
  const int64_t steps = 3 * kSteps;
  dataset.signals =
      t::Tensor::Full(t::Shape{steps, kNodes, kFeatures}, 3.0f);
  dataset.time_of_day.resize(steps);
  dataset.day_of_week.resize(steps);
  for (int64_t i = 0; i < steps; ++i) {
    dataset.time_of_day[i] = i % kStepsPerDay;
    dataset.day_of_week[i] = (i / kStepsPerDay) % 7;
  }
  rig.dataset = std::make_shared<data::TrafficDataset>(std::move(dataset));
  rig.windows =
      std::make_unique<data::WindowDataset>(rig.dataset, kSteps, kSteps);
  rig.factory = [] { return std::make_unique<BiasModel>(); };
  rig.registry =
      std::make_unique<serving::ModelRegistry>(rig.factory, rig.normalizer);
  rig.registry->Install(std::make_unique<BiasModel>(1.0f));  // MAE 2.0
  return rig;
}

float ServedBias(const serving::ModelRegistry& registry) {
  auto served = registry.current();
  return static_cast<const BiasModel*>(served->model.get())->bias();
}

TEST_F(PromotionTest, ShadowEvaluatorScoresServingMae) {
  PromotionRig rig = MakePromotionRig();
  BiasModel model(2.0f);
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  auto score = evaluator.Score(&model, *rig.windows, rig.shadow_indices,
                               rig.normalizer);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(score.value(), 1.0, 1e-5);  // |2 - 3|
}

TEST_F(PromotionTest, BetterCandidatePromotesWorseCandidateRefused) {
  PromotionRig rig = MakePromotionRig();
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  PromotionGate gate(PromotionGateOptions{}, rig.registry.get(), rig.factory);

  auto win = gate.TryPromote(std::make_unique<BiasModel>(2.5f), *rig.windows,
                             rig.shadow_indices, rig.normalizer, evaluator);
  ASSERT_TRUE(win.ok());
  EXPECT_TRUE(win.value().promoted);
  EXPECT_NEAR(win.value().candidate_score, 0.5, 1e-5);
  EXPECT_NEAR(win.value().incumbent_score, 2.0, 1e-5);
  EXPECT_EQ(rig.registry->current_version(), 2);
  EXPECT_EQ(rig.registry->current()->source, "online-adapt");
  EXPECT_FLOAT_EQ(ServedBias(*rig.registry), 2.5f);

  auto lose = gate.TryPromote(std::make_unique<BiasModel>(-4.0f),
                              *rig.windows, rig.shadow_indices,
                              rig.normalizer, evaluator);
  ASSERT_TRUE(lose.ok());
  EXPECT_FALSE(lose.value().promoted);
  EXPECT_EQ(rig.registry->current_version(), 2);  // incumbent intact
  EXPECT_FLOAT_EQ(ServedBias(*rig.registry), 2.5f);
  EXPECT_EQ(gate.promotions(), 1);
  EXPECT_EQ(gate.refusals(), 1);
}

TEST_F(PromotionTest, ShadowEvalFaultRefusesPromotion) {
  PromotionRig rig = MakePromotionRig();
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  PromotionGate gate(PromotionGateOptions{}, rig.registry.get(), rig.factory);
  // The first Score call is the candidate's: its fault must refuse, not
  // promote past an unmeasured comparison.
  ASSERT_TRUE(
      core::FailPoint::Set("shadow_eval", "error(kUnavailable)@1").ok());
  auto decision =
      gate.TryPromote(std::make_unique<BiasModel>(3.0f), *rig.windows,
                      rig.shadow_indices, rig.normalizer, evaluator);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision.value().promoted);
  EXPECT_NE(decision.value().reason.find("unscorable"), std::string::npos);
  EXPECT_EQ(rig.registry->current_version(), 1);
}

TEST_F(PromotionTest, SwapFaultLeavesIncumbentInstalled) {
  PromotionRig rig = MakePromotionRig();
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  PromotionGate gate(PromotionGateOptions{}, rig.registry.get(), rig.factory);
  ASSERT_TRUE(
      core::FailPoint::Set("promote_swap", "error(kUnavailable)@1").ok());
  auto decision =
      gate.TryPromote(std::make_unique<BiasModel>(3.0f), *rig.windows,
                      rig.shadow_indices, rig.normalizer, evaluator);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision.value().promoted);
  EXPECT_NE(decision.value().reason.find("swap fault"), std::string::npos);
  EXPECT_EQ(rig.registry->current_version(), 1);
  EXPECT_FLOAT_EQ(ServedBias(*rig.registry), 1.0f);

  // The same candidate would have won; with the fault cleared it does.
  core::FailPoint::ClearAll();
  auto retry =
      gate.TryPromote(std::make_unique<BiasModel>(3.0f), *rig.windows,
                      rig.shadow_indices, rig.normalizer, evaluator);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry.value().promoted);
}

TEST_F(PromotionTest, SustainedLiveRegressionRollsBackPromotedWeights) {
  PromotionRig rig = MakePromotionRig();
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  PromotionGateOptions gate_options;
  gate_options.rollback_after = 3;
  PromotionGate gate(gate_options, rig.registry.get(), rig.factory);
  ASSERT_TRUE(gate.TryPromote(std::make_unique<BiasModel>(2.5f), *rig.windows,
                              rig.shadow_indices, rig.normalizer, evaluator)
                  .value()
                  .promoted);
  ASSERT_TRUE(gate.monitoring());

  // Two bad observations with a good one between: streak resets, no rollback.
  EXPECT_FALSE(gate.ObserveLive(100.0));
  EXPECT_FALSE(gate.ObserveLive(0.4));
  EXPECT_FALSE(gate.ObserveLive(100.0));
  EXPECT_FALSE(gate.ObserveLive(100.0));
  EXPECT_EQ(gate.rollbacks(), 0);
  // The third consecutive regression trips the rollback.
  EXPECT_TRUE(gate.ObserveLive(100.0));
  EXPECT_EQ(gate.rollbacks(), 1);
  EXPECT_FALSE(gate.monitoring());
  EXPECT_EQ(rig.registry->current()->source, "rollback");
  EXPECT_EQ(rig.registry->current_version(), 3);  // a fresh version, not v1
  EXPECT_FLOAT_EQ(ServedBias(*rig.registry), 1.0f);  // pre-promotion weights
}

TEST_F(PromotionTest, ObserveLiveIsInertWithoutPromotion) {
  PromotionRig rig = MakePromotionRig();
  PromotionGate gate(PromotionGateOptions{}, rig.registry.get(), rig.factory);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(gate.ObserveLive(1e9));
  }
  EXPECT_EQ(gate.rollbacks(), 0);
}

TEST_F(PromotionTest, UnscorableIncumbentIsRecoveredFrom) {
  PromotionRig rig = MakePromotionRig();
  ShadowEvaluator evaluator(ShadowEvaluatorOptions{});
  PromotionGate gate(PromotionGateOptions{}, rig.registry.get(), rig.factory);
  // Candidate scores on hit 1; the incumbent's scoring on hit 2 faults —
  // an incumbent that cannot be measured is treated as infinitely bad, so a
  // healthy candidate recovers the deployment.
  ASSERT_TRUE(
      core::FailPoint::Set("shadow_eval", "error(kUnavailable)@2").ok());
  auto decision =
      gate.TryPromote(std::make_unique<BiasModel>(3.0f), *rig.windows,
                      rig.shadow_indices, rig.normalizer, evaluator);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision.value().promoted);
  EXPECT_TRUE(std::isinf(decision.value().incumbent_score));
}

TEST_F(PromotionTest, CloneWithWeightsCopiesWithoutAliasing) {
  auto factory = [] { return std::make_unique<BiasModel>(); };
  BiasModel source(7.0f);
  std::unique_ptr<training::TrafficModel> clone =
      CloneWithWeights(factory, source);
  EXPECT_FLOAT_EQ(static_cast<BiasModel*>(clone.get())->bias(), 7.0f);
  // Mutating the clone must not write through to the source.
  clone->NamedParameters()[0].second.mutable_value().data()[0] = -1.0f;
  EXPECT_FLOAT_EQ(source.bias(), 7.0f);
}

}  // namespace
}  // namespace sstban::streaming

// Chaos tests for overload control: a server driven far past its admission
// limit must shed cleanly (every request exactly one terminal, admission
// accounting balanced), router hedging toward a slow/dead replica must stay
// bounded by the retry budget with zero duplicate terminals, and a fleet
// brownout must suppress hedging entirely. The CI overload-chaos matrix
// additionally runs this whole binary under ambient SSTBAN_FAILPOINTS
// delay schedules and 5x load.

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/failpoint.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "sharding/fleet.h"
#include "sharding/router.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/model.h"

namespace sstban::serving {
namespace {

namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 12;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 12;

std::shared_ptr<data::TrafficDataset> SmallWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 3;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 6;
  config.seed = 31;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig SmallConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.spatial_mixing = false;
  config.seed = 5;
  return config;
}

bool AllowedTerminal(const core::Status& status) {
  switch (status.code()) {
    case core::StatusCode::kOk:
    case core::StatusCode::kUnavailable:
    case core::StatusCode::kDeadlineExceeded:
    case core::StatusCode::kInvalidArgument:
      return true;
    default:
      return false;
  }
}

// Single-server overload: many clients hammer a small admission limit and a
// tiny queue. The invariant is exactly-one-terminal for every submission
// (shed synchronously OR resolved through the future, never both, never
// neither) and a balanced admission ledger afterwards.
TEST(OverloadChaosTest, SaturatedServerShedsCleanlyAndEveryRequestTerminates) {
  auto dataset = SmallWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = SmallConfig();
  ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      norm);
  registry.Install(std::make_unique<model_ns::SstbanModel>(config));

  ServerOptions options;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = kStepsPerDay;
  options.num_nodes = kNodes;
  options.num_features = kFeatures;
  options.max_batch = 4;
  options.max_wait = std::chrono::milliseconds(1);
  options.queue_capacity = 8;
  options.overload.admission.initial_limit = 8.0;
  options.overload.admission.min_limit = 4.0;
  ForecastServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  constexpr int kPerClient = 15;
  std::atomic<int> terminal{0}, bad{0}, shed{0}, served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        ForecastRequest request;
        const int64_t start = (c * kPerClient + r) % 24;
        request.recent = t::Slice(dataset->signals, 0, start, kSteps).Clone();
        request.first_step = start;
        request.criticality = static_cast<Criticality>(r % 3);
        if (r % 4 == 3) {
          request.deadline =
              Clock::now() + std::chrono::milliseconds(5 + (r % 3) * 40);
        }
        auto submitted = server.Submit(std::move(request));
        if (!submitted.ok()) {
          (AllowedTerminal(submitted.status()) ? terminal : bad).fetch_add(1);
          shed.fetch_add(1);
          continue;
        }
        ForecastResult result = submitted.value().get();
        (AllowedTerminal(result.ok() ? core::Status::Ok() : result.status())
             ? terminal
             : bad)
            .fetch_add(1);
        if (result.ok()) served.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  server.Shutdown();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(terminal.load(), kClients * kPerClient);
  EXPECT_GT(served.load(), 0);  // overload control never starves the server
  // Every admitted request released its slot exactly once — the ledger
  // balancing to zero is the "no leak, no double-release" invariant.
  EXPECT_EQ(server.overload().admission().in_flight(), 0);
}

}  // namespace
}  // namespace sstban::serving

namespace sstban::sharding {
namespace {

namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;
using serving::Criticality;

constexpr int64_t kSteps = 6;
constexpr int64_t kNodes = 12;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 12;

FleetOptions OverloadFleetOptions(int64_t shards, int64_t replicas) {
  FleetOptions options;
  options.partition.num_shards = shards;
  options.replicas_per_shard = replicas;
  options.server.input_len = kSteps;
  options.server.output_len = kSteps;
  options.server.steps_per_day = kStepsPerDay;
  options.server.num_nodes = kNodes;
  options.server.num_features = kFeatures;
  options.server.max_batch = 4;
  options.server.max_wait = std::chrono::milliseconds(2);
  options.server.queue_capacity = 64;
  options.server.stall_budget = std::chrono::milliseconds(200);
  options.router.shard_timeout = std::chrono::milliseconds(600);
  options.router.gather_grace = std::chrono::milliseconds(150);
  return options;
}

std::shared_ptr<data::TrafficDataset> FleetWorld() {
  data::SyntheticWorldConfig config;
  config.num_nodes = kNodes;
  config.num_corridors = 3;
  config.steps_per_day = kStepsPerDay;
  config.num_days = 6;
  config.seed = 31;
  return std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(config));
}

model_ns::SstbanConfig FleetConfig() {
  model_ns::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 4;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 2;
  config.spatial_mixing = false;
  config.seed = 5;
  return config;
}

// Router hedging under a dead replica: hedges + failovers toward the healthy
// sibling are bounded by the retry budget (burst=2, no refill), the denials
// are counted, and every request still reaches exactly one terminal — no
// duplicate fulfillment from the hedge path.
TEST(OverloadChaosTest, HedgesAreBoundedByTheRetryBudget) {
  // Budget-denial assertions need a quiet environment; an ambient CI delay
  // schedule changes which replica is picked, so then we only keep the
  // terminal invariant.
  const bool quiet = !core::failpoint_internal::AnyArmed();

  auto dataset = FleetWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = FleetConfig();
  model_ns::SstbanModel full_model(config);

  FleetOptions options = OverloadFleetOptions(/*shards=*/2, /*replicas=*/2);
  options.router.retry_budget.ratio = 0.0;  // nothing earned back
  options.router.retry_budget.burst = 2.0;  // two hedges, then denial
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       options);
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());

  // Kill replica (0, 0): its health probe reports not-ready, so rotation
  // picks landing on it want to hedge to replica (0, 1).
  fleet->worker(0, 0).Shutdown();

  constexpr int kRequests = 20;
  int terminal = 0, duplicates = 0;
  for (int r = 0; r < kRequests; ++r) {
    ShardedRequest request;
    request.recent = t::Slice(dataset->signals, 0, r % 24, kSteps).Clone();
    request.first_step = r % 24;
    auto submitted = fleet->router().Submit(std::move(request));
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    ShardedFuture future = std::move(submitted).value();
    ShardedResult result = future.get();
    ++terminal;
    (void)result;  // any terminal code is fine; shard 0 may be partial/NaN
    // get() consumed the one-and-only terminal: a still-valid future here
    // would mean the hedge path fulfilled the promise a second time.
    if (future.valid()) ++duplicates;
  }
  EXPECT_EQ(terminal, kRequests);
  EXPECT_EQ(duplicates, 0);

  RouterStatsSnapshot snap = fleet->router().StatsSnapshot();
  if (quiet) {
    // Toward the healthy sibling of the dead replica, total budget spends
    // (hedges at dispatch + failovers after rejection) are capped at burst.
    EXPECT_LE(snap.hedges + snap.failovers, 2);
    EXPECT_GT(snap.hedges_denied + snap.failovers_denied, 0);
  }
  fleet->Shutdown();
}

// Brownout at kNoHedge stops the router from hedging or failing over at all,
// and recovery restores hedging — the ladder is reversible at the fleet
// level too.
TEST(OverloadChaosTest, FleetBrownoutSuppressesHedgingUntilPressureClears) {
  const bool quiet = !core::failpoint_internal::AnyArmed();

  auto dataset = FleetWorld();
  data::Normalizer norm = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = FleetConfig();
  model_ns::SstbanModel full_model(config);

  auto pressure = std::make_shared<std::atomic<int64_t>>(5000);
  FleetOptions options = OverloadFleetOptions(/*shards=*/2, /*replicas=*/2);
  options.router.brownout.enter_bytes = {1000, 2000, 3000};
  options.router.brownout.min_dwell = std::chrono::milliseconds(0);
  options.router.brownout.probe = [pressure] { return pressure->load(); };
  auto fleet_or = ShardedFleet::Create(*dataset->graph, full_model, norm,
                                       options);
  ASSERT_TRUE(fleet_or.ok());
  std::unique_ptr<ShardedFleet>& fleet = fleet_or.value();
  ASSERT_TRUE(fleet->Start().ok());
  fleet->worker(0, 0).Shutdown();

  auto run_requests = [&](int count) {
    for (int r = 0; r < count; ++r) {
      ShardedRequest request;
      request.recent = t::Slice(dataset->signals, 0, r % 24, kSteps).Clone();
      request.first_step = r % 24;
      auto submitted = fleet->router().Submit(std::move(request));
      if (submitted.ok()) (void)submitted.value().get();
    }
  };

  run_requests(8);
  RouterStatsSnapshot under = fleet->router().StatsSnapshot();
  if (quiet) {
    EXPECT_EQ(under.hedges, 0);  // brownout: no hedging at all
    EXPECT_EQ(under.failovers, 0);
  }
  EXPECT_NE(under.brownout_level, "normal");

  // Pressure clears; the ladder steps down on subsequent Submits and the
  // dead replica is routed around again.
  pressure->store(0);
  run_requests(10);
  RouterStatsSnapshot after = fleet->router().StatsSnapshot();
  EXPECT_EQ(after.brownout_level, "normal");
  if (quiet) {
    EXPECT_GT(after.hedges + after.failovers, 0);
  }
  fleet->Shutdown();
}

}  // namespace
}  // namespace sstban::sharding

#include <cmath>
#include <gtest/gtest.h>

#include "core/rng.h"
#include "sstban/masking.h"
#include "tensor/ops.h"

namespace sstban::sstban {
namespace {

double MaskedFraction(const tensor::Tensor& mask) {
  return 1.0 - tensor::MeanAll(mask).item();
}

TEST(MaskingTest, ValuesAreBinary) {
  core::Rng rng(1);
  tensor::Tensor mask =
      GenerateMask(24, 6, 2, 4, 0.4, MaskStrategy::kSpacetimeAgnostic, rng);
  for (int64_t i = 0; i < mask.size(); ++i) {
    float v = mask.data()[i];
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

class MaskRateTest : public ::testing::TestWithParam<double> {};

TEST_P(MaskRateTest, MaskedFractionMatchesRate) {
  double rate = GetParam();
  core::Rng rng(2);
  // P divisible by patch_len so every patch has equal size and the realized
  // fraction is exact (floor of rate * num_patches).
  tensor::Tensor mask =
      GenerateMask(24, 8, 1, 4, rate, MaskStrategy::kSpacetimeAgnostic, rng);
  int64_t num_patches = (24 / 4) * 8;
  double expected =
      std::floor(rate * num_patches) / static_cast<double>(num_patches);
  EXPECT_NEAR(MaskedFraction(mask), expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Rates, MaskRateTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.8));

TEST(MaskingTest, PatchesAreTemporallyContiguous) {
  core::Rng rng(3);
  const int64_t p = 20, patch = 5;
  tensor::Tensor mask =
      GenerateMask(p, 4, 1, patch, 0.5, MaskStrategy::kSpacetimeAgnostic, rng);
  // Within each aligned patch window of one node, values must be uniform
  // (a patch is masked wholesale or not at all).
  for (int64_t v = 0; v < 4; ++v) {
    for (int64_t seg = 0; seg < p / patch; ++seg) {
      float first = mask.at({seg * patch, v, 0});
      for (int64_t t = seg * patch; t < (seg + 1) * patch; ++t) {
        EXPECT_EQ(mask.at({t, v, 0}), first) << "t=" << t << " v=" << v;
      }
    }
  }
}

TEST(MaskingTest, PartialTrailingPatchAllowed) {
  core::Rng rng(4);
  // P=10, patch=4 -> segments of sizes 4,4,2.
  tensor::Tensor mask =
      GenerateMask(10, 2, 1, 4, 0.5, MaskStrategy::kSpacetimeAgnostic, rng);
  EXPECT_EQ(mask.shape(), tensor::Shape({10, 2, 1}));
}

TEST(MaskingTest, AtLeastOnePatchAlwaysVisible) {
  core::Rng rng(5);
  tensor::Tensor mask =
      GenerateMask(12, 3, 1, 3, 0.99, MaskStrategy::kSpacetimeAgnostic, rng);
  EXPECT_GT(tensor::SumAll(mask).item(), 0.0f);
}

TEST(MaskingTest, SpaceOnlyMasksWholeNodes) {
  core::Rng rng(6);
  tensor::Tensor mask =
      GenerateMask(16, 10, 2, 4, 0.3, MaskStrategy::kSpaceOnly, rng);
  int64_t masked_nodes = 0;
  for (int64_t v = 0; v < 10; ++v) {
    float first = mask.at({0, v, 0});
    for (int64_t t = 0; t < 16; ++t) {
      for (int64_t c = 0; c < 2; ++c) {
        EXPECT_EQ(mask.at({t, v, c}), first)
            << "node " << v << " not uniformly masked";
      }
    }
    if (first == 0.0f) ++masked_nodes;
  }
  EXPECT_EQ(masked_nodes, 3);  // floor(0.3 * 10)
}

TEST(MaskingTest, TimeOnlyMasksWholeSlicesAcrossNodes) {
  core::Rng rng(7);
  tensor::Tensor mask =
      GenerateMask(20, 6, 1, 5, 0.5, MaskStrategy::kTimeOnly, rng);
  // Each time step is either fully masked or fully visible across nodes.
  int64_t masked_steps = 0;
  for (int64_t t = 0; t < 20; ++t) {
    float first = mask.at({t, 0, 0});
    for (int64_t v = 0; v < 6; ++v) {
      EXPECT_EQ(mask.at({t, v, 0}), first);
    }
    if (first == 0.0f) ++masked_steps;
  }
  // floor(0.5 * 4 segments) = 2 segments of 5 steps.
  EXPECT_EQ(masked_steps, 10);
}

TEST(MaskingTest, DeterministicInRngState) {
  core::Rng rng1(8), rng2(8);
  tensor::Tensor a =
      GenerateMask(12, 5, 1, 3, 0.4, MaskStrategy::kSpacetimeAgnostic, rng1);
  tensor::Tensor b =
      GenerateMask(12, 5, 1, 3, 0.4, MaskStrategy::kSpacetimeAgnostic, rng2);
  EXPECT_TRUE(tensor::AllClose(a, b));
}

TEST(MaskingTest, SuccessiveMasksDiffer) {
  core::Rng rng(9);
  tensor::Tensor a =
      GenerateMask(12, 5, 1, 3, 0.4, MaskStrategy::kSpacetimeAgnostic, rng);
  tensor::Tensor b =
      GenerateMask(12, 5, 1, 3, 0.4, MaskStrategy::kSpacetimeAgnostic, rng);
  EXPECT_FALSE(tensor::AllClose(a, b));
}

TEST(MaskingTest, StrategyNames) {
  EXPECT_STREQ(MaskStrategyName(MaskStrategy::kSpacetimeAgnostic),
               "spacetime-agnostic");
  EXPECT_STREQ(MaskStrategyName(MaskStrategy::kSpaceOnly), "space-only");
  EXPECT_STREQ(MaskStrategyName(MaskStrategy::kTimeOnly), "time-only");
}

TEST(MaskingTest, ZeroRateMasksNothing) {
  core::Rng rng(10);
  tensor::Tensor mask =
      GenerateMask(8, 4, 1, 2, 0.0, MaskStrategy::kSpacetimeAgnostic, rng);
  EXPECT_FLOAT_EQ(tensor::MeanAll(mask).item(), 1.0f);
}

}  // namespace
}  // namespace sstban::sstban

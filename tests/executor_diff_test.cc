// Differential testing harness for the static inference executor: for a
// grid of (B, P, N) shapes and every SstbanConfig toggle that changes the
// traced graph (spatial_mixing, use_bottleneck, masked/unmasked input), the
// compiled program's output must equal the autograd tape forward BIT FOR
// BIT, at 1 worker thread and at 8. This is the executor's correctness
// contract (DESIGN.md §13): it may skip the tape, never disagree with it.
//
// The default grid is sized for per-commit CI; setting SSTBAN_EXEC_DIFF_LARGE
// in the environment (or running the `executor_diff_large` ctest target,
// label `exec_diff`) expands it for the nightly sweep.

#include <array>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "exec/engine.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/forecast_service.h"

namespace sstban {
namespace {

namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kStepsPerDay = 8;

model_ns::SstbanConfig DiffConfig(int64_t p, int64_t n, bool spatial_mixing,
                                  bool use_bottleneck) {
  model_ns::SstbanConfig config;
  config.num_nodes = n;
  config.input_len = p;
  config.output_len = p;
  config.num_features = 1;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.temporal_refs = 2;
  config.spatial_refs = 2;
  config.patch_len = 2;
  config.spatial_mixing = spatial_mixing;
  config.use_bottleneck = use_bottleneck;
  config.self_supervised = false;
  config.seed = 11;
  return config;
}

// Assembles a [B, P, N, 1] batch of deterministic pseudo-random "normalized"
// signals with per-window calendar features, exactly as serving would.
data::Batch MakeBatch(int64_t b, int64_t p, int64_t n, uint64_t seed) {
  core::Rng rng(seed);
  data::Batch batch;
  batch.x = t::Tensor::RandomUniform(t::Shape{b, p, n, 1}, rng, -1.5f, 1.5f);
  batch.y = t::Tensor::Zeros(t::Shape{b, p, n, 1});
  for (int64_t i = 0; i < b; ++i) {
    training::AppendCalendarFeatures(/*first_step=*/3 + 5 * i, p, p,
                                     kStepsPerDay, &batch);
  }
  return batch;
}

// A keep mask with a deterministic scatter of dropped positions (roughly one
// in four), never dropping everything.
t::Tensor MakeKeepMask(int64_t b, int64_t p, int64_t n) {
  t::Tensor keep = t::Tensor::Ones(t::Shape{b, p, n});
  float* data = keep.data();
  for (int64_t i = 0; i < keep.size(); i += 4) data[i] = 0.0f;
  data[0] = 1.0f;  // keep at least the first position observed
  return keep;
}

struct DiffCase {
  int64_t b, p, n;
  bool spatial_mixing;
  bool use_bottleneck;
  bool masked;
};

std::vector<DiffCase> GridCases() {
  std::vector<DiffCase> cases;
  // Shape grid: every toggle combination on a small shape, plus shape
  // variation (batch > 1, longer windows, more nodes) on the default config.
  const bool large = std::getenv("SSTBAN_EXEC_DIFF_LARGE") != nullptr;
  std::vector<std::array<int64_t, 3>> shapes = {{1, 4, 3}, {2, 4, 3}};
  if (large) {
    shapes.push_back({3, 8, 5});
    shapes.push_back({5, 6, 7});
    shapes.push_back({8, 8, 4});
  } else {
    shapes.push_back({3, 6, 4});
  }
  for (const auto& shape : shapes) {
    for (bool spatial : {false, true}) {
      for (bool bottleneck : {false, true}) {
        for (bool masked : {false, true}) {
          cases.push_back(
              {shape[0], shape[1], shape[2], spatial, bottleneck, masked});
        }
      }
    }
  }
  return cases;
}

std::string CaseName(const DiffCase& c) {
  return "B" + std::to_string(c.b) + "_P" + std::to_string(c.p) + "_N" +
         std::to_string(c.n) + (c.spatial_mixing ? "_spatial" : "_temporal") +
         (c.use_bottleneck ? "_stba" : "_full") +
         (c.masked ? "_masked" : "_clean");
}

// Runs one case at the current parallelism cap: tape forward and compiled
// program on identical inputs, byte-compared.
void RunCase(const DiffCase& c) {
  SCOPED_TRACE(CaseName(c));
  model_ns::SstbanConfig config =
      DiffConfig(c.p, c.n, c.spatial_mixing, c.use_bottleneck);
  model_ns::SstbanModel model(config);
  model.SetTraining(false);
  data::Batch batch = MakeBatch(c.b, c.p, c.n, /*seed=*/c.b * 100 + c.n);
  t::Tensor keep = MakeKeepMask(c.b, c.p, c.n);

  t::Tensor tape;
  {
    autograd::NoGradGuard no_grad;
    tape = c.masked ? model.PredictMasked(batch.x, keep, batch).value()
                    : model.Predict(batch.x, batch).value();
  }

  exec::InferenceEngine* engine = model.inference_engine();
  ASSERT_NE(engine, nullptr);
  // Two executor runs: the first compiles (trace + arena planning +
  // self-check), the second replays the cached program — both must agree
  // with the tape bitwise.
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    t::Tensor out;
    core::Status status = c.masked ? engine->RunMasked(batch.x, keep, batch, &out)
                                   : engine->Run(batch.x, batch, &out);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(out.shape() == tape.shape())
        << out.shape().ToString() << " vs " << tape.shape().ToString();
    EXPECT_EQ(std::memcmp(out.data(), tape.data(),
                          static_cast<size_t>(out.size()) * sizeof(float)),
              0);
  }
  exec::InferenceEngine::Stats stats = engine->stats();
  EXPECT_EQ(stats.compiles, 1);
  EXPECT_EQ(stats.runs, 2);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.poisoned, 0);
}

TEST(ExecutorDiffTest, GridMatchesTapeBitwiseSingleThread) {
  core::SetParallelismCapForTesting(1);
  for (const DiffCase& c : GridCases()) RunCase(c);
  core::SetParallelismCapForTesting(0);
}

TEST(ExecutorDiffTest, GridMatchesTapeBitwiseEightThreads) {
  core::SetParallelismCapForTesting(8);
  for (const DiffCase& c : GridCases()) RunCase(c);
  core::SetParallelismCapForTesting(0);
}

// The same model instance must hold independent compiled programs per shape:
// serving traffic mixes batch sizes, and a (B=1) program must not be replayed
// for a (B=3) batch.
TEST(ExecutorDiffTest, OneEngineServesMultipleShapes) {
  model_ns::SstbanConfig config = DiffConfig(4, 3, /*spatial_mixing=*/true,
                                             /*use_bottleneck=*/true);
  model_ns::SstbanModel model(config);
  model.SetTraining(false);
  exec::InferenceEngine* engine = model.inference_engine();
  ASSERT_NE(engine, nullptr);
  for (int64_t b : {1, 2, 4, 2, 1}) {
    SCOPED_TRACE("B=" + std::to_string(b));
    data::Batch batch = MakeBatch(b, 4, 3, /*seed=*/7 + b);
    t::Tensor tape;
    {
      autograd::NoGradGuard no_grad;
      tape = model.Predict(batch.x, batch).value();
    }
    t::Tensor out;
    ASSERT_TRUE(engine->Run(batch.x, batch, &out).ok());
    EXPECT_EQ(std::memcmp(out.data(), tape.data(),
                          static_cast<size_t>(out.size()) * sizeof(float)),
              0);
  }
  exec::InferenceEngine::Stats stats = engine->stats();
  EXPECT_EQ(stats.compiles, 3);  // B in {1, 2, 4}; repeats hit the cache
  EXPECT_EQ(stats.runs, 5);
}

// Masked and unmasked programs for the same geometry are distinct cache
// entries; interleaving them must not cross wires.
TEST(ExecutorDiffTest, MaskedAndUnmaskedProgramsCoexist) {
  model_ns::SstbanConfig config = DiffConfig(4, 3, /*spatial_mixing=*/true,
                                             /*use_bottleneck=*/true);
  model_ns::SstbanModel model(config);
  model.SetTraining(false);
  data::Batch batch = MakeBatch(2, 4, 3, /*seed=*/23);
  t::Tensor keep = MakeKeepMask(2, 4, 3);
  t::Tensor tape_clean, tape_masked;
  {
    autograd::NoGradGuard no_grad;
    tape_clean = model.Predict(batch.x, batch).value();
    tape_masked = model.PredictMasked(batch.x, keep, batch).value();
  }
  exec::InferenceEngine* engine = model.inference_engine();
  for (int round = 0; round < 2; ++round) {
    t::Tensor out_clean, out_masked;
    ASSERT_TRUE(engine->Run(batch.x, batch, &out_clean).ok());
    ASSERT_TRUE(engine->RunMasked(batch.x, keep, batch, &out_masked).ok());
    EXPECT_EQ(std::memcmp(out_clean.data(), tape_clean.data(),
                          static_cast<size_t>(out_clean.size()) * sizeof(float)),
              0);
    EXPECT_EQ(
        std::memcmp(out_masked.data(), tape_masked.data(),
                    static_cast<size_t>(out_masked.size()) * sizeof(float)),
        0);
  }
  EXPECT_EQ(engine->stats().compiles, 2);
}

// A fresh keep mask (same shape, different dropout pattern) must be re-read
// on every run, not baked into the compiled program.
TEST(ExecutorDiffTest, KeepMaskContentsAreReadPerRun) {
  model_ns::SstbanConfig config = DiffConfig(4, 3, /*spatial_mixing=*/true,
                                             /*use_bottleneck=*/true);
  model_ns::SstbanModel model(config);
  model.SetTraining(false);
  data::Batch batch = MakeBatch(1, 4, 3, /*seed=*/5);
  exec::InferenceEngine* engine = model.inference_engine();

  t::Tensor keep_a = MakeKeepMask(1, 4, 3);
  t::Tensor keep_b = t::Tensor::Ones(t::Shape{1, 4, 3});
  keep_b.data()[5] = 0.0f;
  keep_b.data()[9] = 0.0f;

  for (const t::Tensor& keep : {keep_a, keep_b}) {
    t::Tensor tape;
    {
      autograd::NoGradGuard no_grad;
      tape = model.PredictMasked(batch.x, keep, batch).value();
    }
    t::Tensor out;
    ASSERT_TRUE(engine->RunMasked(batch.x, keep, batch, &out).ok());
    EXPECT_EQ(std::memcmp(out.data(), tape.data(),
                          static_cast<size_t>(out.size()) * sizeof(float)),
              0);
  }
  EXPECT_EQ(engine->stats().compiles, 1);  // one shape, one program
}

// Likewise the input window and calendar features: same shape, new contents.
TEST(ExecutorDiffTest, InputAndCalendarContentsAreReadPerRun) {
  model_ns::SstbanConfig config = DiffConfig(4, 3, /*spatial_mixing=*/true,
                                             /*use_bottleneck=*/true);
  model_ns::SstbanModel model(config);
  model.SetTraining(false);
  exec::InferenceEngine* engine = model.inference_engine();
  for (uint64_t seed : {40u, 41u, 42u}) {
    data::Batch batch = MakeBatch(2, 4, 3, seed);
    t::Tensor tape;
    {
      autograd::NoGradGuard no_grad;
      tape = model.Predict(batch.x, batch).value();
    }
    t::Tensor out;
    ASSERT_TRUE(engine->Run(batch.x, batch, &out).ok());
    EXPECT_EQ(std::memcmp(out.data(), tape.data(),
                          static_cast<size_t>(out.size()) * sizeof(float)),
              0);
  }
  EXPECT_EQ(engine->stats().compiles, 1);
}

// -- RunBatchedInferenceMasked keep-mask validation (the serving bugfix) ------

TEST(MaskedInferenceValidationTest, MismatchedKeepDimsAreRejected) {
  model_ns::SstbanConfig config = DiffConfig(4, 3, /*spatial_mixing=*/true,
                                             /*use_bottleneck=*/true);
  model_ns::SstbanModel model(config);
  data::Batch batch = MakeBatch(2, 4, 3, /*seed=*/1);
  data::Normalizer norm = data::Normalizer::Fit(batch.x);

  // Wrong in every dimension that matters: batch, window length, node count.
  for (const t::Shape& bad :
       {t::Shape{1, 4, 3}, t::Shape{2, 5, 3}, t::Shape{2, 4, 4},
        t::Shape{2, 4}}) {
    auto result = training::RunBatchedInferenceMasked(
        &model, norm, batch, t::Tensor::Ones(bad),
        training::ExecutorMode::kTape);
    EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument)
        << bad.ToString() << ": " << result.status().ToString();
  }

  // The matching mask still goes through.
  auto ok_result = training::RunBatchedInferenceMasked(
      &model, norm, batch, t::Tensor::Ones(t::Shape{2, 4, 3}),
      training::ExecutorMode::kTape);
  EXPECT_TRUE(ok_result.ok()) << ok_result.status().ToString();
}

}  // namespace
}  // namespace sstban

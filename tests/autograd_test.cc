#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/rng.h"
#include "gradcheck.h"
#include "tensor/ops.h"

namespace sstban::autograd {
namespace {

namespace t = ::sstban::tensor;
using sstban::testing::ExpectGradientsMatch;

t::Tensor Rand(t::Shape shape, uint64_t seed, float scale = 1.0f) {
  core::Rng rng(seed);
  return t::Tensor::RandomNormal(std::move(shape), rng, 0.0f, scale);
}

TEST(VariableTest, LeafProperties) {
  Variable v(t::Tensor::Ones(t::Shape{2, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.shape(), t::Shape({2, 2}));
}

TEST(VariableTest, BackwardThroughSimpleChain) {
  Variable x(t::Tensor::Full(t::Shape{3}, 2.0f), true);
  Variable y = SumAll(Mul(x, x));  // d/dx sum(x^2) = 2x
  y.Backward();
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad().data()[i], 4.0f);
}

TEST(VariableTest, GradAccumulatesAcrossUses) {
  Variable x(t::Tensor::Full(t::Shape{2}, 3.0f), true);
  Variable y = SumAll(Add(x, x));  // x used twice -> grad 2
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 2.0f);
}

TEST(VariableTest, DiamondGraphGradientIsCorrect) {
  // y = sum((x+x) * x) = sum(2 x^2) -> dy/dx = 4x.
  Variable x(t::Tensor::Full(t::Shape{2}, 1.5f), true);
  Variable y = SumAll(Mul(Add(x, x), x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 6.0f);
}

TEST(VariableTest, DetachStopsGradient) {
  Variable x(t::Tensor::Full(t::Shape{2}, 2.0f), true);
  Variable y = SumAll(Mul(x.Detach(), x));  // only the second factor gets grad
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 2.0f);
}

TEST(VariableTest, NoGradGuardDisablesRecording) {
  Variable x(t::Tensor::Full(t::Shape{2}, 2.0f), true);
  NoGradGuard guard;
  Variable y = Mul(x, x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(VariableTest, ZeroGradClears) {
  Variable x(t::Tensor::Full(t::Shape{1}, 2.0f), true);
  SumAll(Mul(x, x)).Backward();
  EXPECT_TRUE(x.has_grad());
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, ConstantInputsGetNoGrad) {
  Variable x(t::Tensor::Full(t::Shape{1}, 2.0f), true);
  Variable c(t::Tensor::Full(t::Shape{1}, 5.0f), false);
  Variable y = SumAll(Mul(x, c));
  y.Backward();
  EXPECT_TRUE(x.has_grad());
  EXPECT_FALSE(c.has_grad());
}

// -- Gradient checks, one per op family ------------------------------------

TEST(GradCheckTest, AddWithBroadcast) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) { return SumAll(Mul(Add(v[0], v[1]), v[0])); },
      {Rand({2, 3}, 1), Rand({3}, 2)});
}

TEST(GradCheckTest, SubDivMul) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        return SumAll(Div(Mul(v[0], v[1]), AddScalar(Square(v[2]), 1.0f)));
      },
      {Rand({2, 2}, 3), Rand({2, 2}, 4), Rand({2, 2}, 5)});
}

TEST(GradCheckTest, UnaryChain) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        return MeanAll(Tanh(Add(Sigmoid(v[0]), Relu(v[0]))));
      },
      {Rand({3, 3}, 6)});
}

TEST(GradCheckTest, ExpLogSqrt) {
  // Keep inputs positive and away from zero for log/sqrt.
  core::Rng rng(7);
  t::Tensor x = t::Tensor::RandomUniform(t::Shape{4}, rng, 0.5f, 2.0f);
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        return SumAll(Add(Log(v[0]), Sqrt(Exp(v[0]))));
      },
      {x});
}

TEST(GradCheckTest, AbsAwayFromZero) {
  core::Rng rng(8);
  t::Tensor x = t::Tensor::RandomUniform(t::Shape{4}, rng, 0.5f, 2.0f);
  x.data()[1] *= -1.0f;
  x.data()[3] *= -1.0f;
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) { return SumAll(Abs(v[0])); }, {x});
}

TEST(GradCheckTest, Matmul2D) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) { return SumAll(Square(Matmul(v[0], v[1]))); },
      {Rand({3, 4}, 9, 0.5f), Rand({4, 2}, 10, 0.5f)});
}

class BmmGradTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(BmmGradTest, MatchesNumeric) {
  auto [ta, tb] = GetParam();
  t::Shape a_shape = ta ? t::Shape{2, 3, 4} : t::Shape{2, 4, 3};
  t::Shape b_shape = tb ? t::Shape{2, 5, 3} : t::Shape{2, 3, 5};
  ExpectGradientsMatch(
      [ta, tb](std::vector<Variable>& v) {
        return SumAll(Square(Bmm(v[0], v[1], ta, tb)));
      },
      {Rand(a_shape, 11, 0.5f), Rand(b_shape, 12, 0.5f)});
}

INSTANTIATE_TEST_SUITE_P(AllTransposeCombos, BmmGradTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

TEST(GradCheckTest, ReshapePermute) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        Variable p = Permute(v[0], {2, 0, 1});
        return SumAll(Square(Reshape(p, t::Shape{4, 6})));
      },
      {Rand({2, 3, 4}, 13)});
}

TEST(GradCheckTest, ConcatSlice) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        Variable c = Concat({v[0], v[1]}, 1);
        return SumAll(Square(Slice(c, 1, 1, 3)));
      },
      {Rand({2, 2}, 14), Rand({2, 3}, 15)});
}

TEST(GradCheckTest, SumMeanAxis) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        return SumAll(Square(Add(Sum(v[0], 0), Mean(v[0], 0))));
      },
      {Rand({3, 4}, 16)});
}

TEST(GradCheckTest, SumKeepdim) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        return SumAll(Square(Sub(v[0], Mean(v[0], -1, true))));
      },
      {Rand({2, 5}, 17)});
}

TEST(GradCheckTest, Softmax) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        Variable s = Softmax(v[0]);
        return SumAll(Mul(s, v[1]));
      },
      {Rand({3, 4}, 18), Rand({3, 4}, 19)});
}

TEST(GradCheckTest, SoftmaxWithMask) {
  t::Tensor mask = t::Tensor::Zeros(t::Shape{2, 4});
  mask.at({0, 1}) = -1e9f;
  mask.at({1, 3}) = -1e9f;
  ExpectGradientsMatch(
      [mask](std::vector<Variable>& v) {
        return SumAll(Square(SoftmaxWithMask(v[0], mask)));
      },
      {Rand({2, 4}, 20)});
}

TEST(GradCheckTest, EmbeddingLookup) {
  std::vector<int64_t> indices = {0, 2, 2, 1};
  ExpectGradientsMatch(
      [&indices](std::vector<Variable>& v) {
        return SumAll(Square(EmbeddingLookup(v[0], indices)));
      },
      {Rand({3, 4}, 21)});
}

TEST(GradCheckTest, Conv1dTimeWithDilation) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) {
        return SumAll(Square(Conv1dTime(v[0], v[1], v[2], /*dilation=*/2)));
      },
      {Rand({2, 7, 3}, 22, 0.5f), Rand({2, 3, 4}, 23, 0.5f), Rand({4}, 24, 0.5f)});
}

TEST(GradCheckTest, Losses) {
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) { return MseLoss(v[0], v[1]); },
      {Rand({3, 3}, 25), Rand({3, 3}, 26)});
  // MAE gradient is discontinuous at 0; keep pred and target separated.
  t::Tensor pred = t::Tensor::Full(t::Shape{4}, 2.0f);
  t::Tensor target = t::Tensor::FromVector(t::Shape{4}, {0.0f, 1.0f, 3.5f, 4.0f});
  ExpectGradientsMatch(
      [](std::vector<Variable>& v) { return MaeLoss(v[0], v[1]); },
      {pred, target});
}

TEST(OpsTest, Conv1dTimeShapeAndValues) {
  // Kernel [1, 1] summing two adjacent steps of a single channel.
  Variable x(t::Tensor::FromVector(t::Shape{1, 4, 1}, {1, 2, 3, 4}));
  Variable w(t::Tensor::FromVector(t::Shape{2, 1, 1}, {1, 1}));
  Variable out = Conv1dTime(x, w, Variable(), 1);
  EXPECT_EQ(out.shape(), t::Shape({1, 3, 1}));
  EXPECT_EQ(out.value().ToVector(), (std::vector<float>{3, 5, 7}));
  // Dilation 2 pairs steps two apart.
  Variable out2 = Conv1dTime(x, w, Variable(), 2);
  EXPECT_EQ(out2.value().ToVector(), (std::vector<float>{4, 6}));
}

TEST(OpsTest, DropoutTrainingAndEval) {
  core::Rng rng(27);
  Variable x(t::Tensor::Ones(t::Shape{1000}), true);
  Variable dropped = Dropout(x, 0.5f, rng, /*training=*/true);
  int64_t zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    float v = dropped.value().data()[i];
    if (v == 0.0f) ++zeros;
    sum += v;
  }
  EXPECT_GT(zeros, 380);
  EXPECT_LT(zeros, 620);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);  // inverted scaling keeps mean ~1
  Variable eval = Dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_TRUE(t::AllClose(eval.value(), x.value()));
}

TEST(OpsTest, DropoutBackwardUsesSameMask) {
  core::Rng rng(28);
  Variable x(t::Tensor::Ones(t::Shape{100}), true);
  Variable y = SumAll(Dropout(x, 0.3f, rng, true));
  y.Backward();
  // Gradient must be 0 exactly where the output was 0 and 1/(1-p) elsewhere.
  for (int64_t i = 0; i < 100; ++i) {
    float g = x.grad().data()[i];
    EXPECT_TRUE(g == 0.0f || std::fabs(g - 1.0f / 0.7f) < 1e-5) << g;
  }
}

}  // namespace
}  // namespace sstban::autograd

// Unit tests for the core::FailPoint fault-injection subsystem: spec
// parsing, Nth-hit triggering, action semantics, and the inactive fast
// path. The crash action is exercised end-to-end by checkpoint_crash_test
// (it aborts the process, so it needs a subprocess harness).

#include <gtest/gtest.h>

#include <chrono>

#include "core/failpoint.h"
#include "core/status.h"

namespace sstban::core {
namespace {

// Every test leaves the registry clean so suites can run in any order and
// an env-armed SSTBAN_FAILPOINTS run is not perturbed mid-flight.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoint::ClearAll(); }
  void TearDown() override { FailPoint::ClearAll(); }
};

Status HitPoint(const char* name) {
  SSTBAN_FAILPOINT(name);
  return Status::Ok();
}

TEST_F(FailPointTest, InactiveIsNoop) {
  EXPECT_FALSE(failpoint_internal::AnyArmed());
  EXPECT_TRUE(HitPoint("never_armed").ok());
  EXPECT_EQ(FailPoint::HitCount("never_armed"), 0);
}

TEST_F(FailPointTest, ErrorEveryHit) {
  ASSERT_TRUE(FailPoint::Set("p", "error(kUnavailable)").ok());
  EXPECT_TRUE(failpoint_internal::AnyArmed());
  for (int i = 0; i < 3; ++i) {
    Status status = HitPoint("p");
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    EXPECT_NE(status.message().find("injected by failpoint 'p'"),
              std::string::npos);
  }
  EXPECT_EQ(FailPoint::HitCount("p"), 3);
}

TEST_F(FailPointTest, ErrorOnNthHitOnly) {
  ASSERT_TRUE(FailPoint::Set("p", "error(kIoError)@2").ok());
  EXPECT_TRUE(HitPoint("p").ok());
  EXPECT_EQ(HitPoint("p").code(), StatusCode::kIoError);
  EXPECT_TRUE(HitPoint("p").ok());  // single-shot: hit 3 passes again
  EXPECT_EQ(FailPoint::HitCount("p"), 3);
}

TEST_F(FailPointTest, StatusCodeAcceptsBareAndPrefixedNames) {
  ASSERT_TRUE(FailPoint::Set("a", "error(kFailedPrecondition)").ok());
  ASSERT_TRUE(FailPoint::Set("b", "error(FailedPrecondition)").ok());
  EXPECT_EQ(HitPoint("a").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(HitPoint("b").code(), StatusCode::kFailedPrecondition);
}

TEST_F(FailPointTest, DelayActionSleepsAndSucceeds) {
  ASSERT_TRUE(FailPoint::Set("p", "delay(20)@1").ok());
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(HitPoint("p").ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 15);
  // Second hit is past the single-shot trigger: no sleep, no error.
  EXPECT_TRUE(HitPoint("p").ok());
}

TEST_F(FailPointTest, NotifyVariantSwallowsErrors) {
  ASSERT_TRUE(FailPoint::Set("p", "error(kInternal)").ok());
  SSTBAN_FAILPOINT_NOTIFY("p");  // must compile in a void context and not throw
  EXPECT_EQ(FailPoint::HitCount("p"), 1);
}

TEST_F(FailPointTest, ClearDisarms) {
  ASSERT_TRUE(FailPoint::Set("p", "error(kIoError)").ok());
  FailPoint::Clear("p");
  EXPECT_FALSE(failpoint_internal::AnyArmed());
  EXPECT_TRUE(HitPoint("p").ok());
}

TEST_F(FailPointTest, SetReplacesAndResetsHitCount) {
  ASSERT_TRUE(FailPoint::Set("p", "error(kIoError)").ok());
  EXPECT_FALSE(HitPoint("p").ok());
  ASSERT_TRUE(FailPoint::Set("p", "error(kIoError)@3").ok());
  EXPECT_TRUE(HitPoint("p").ok());  // counter restarted: this is hit 1
  EXPECT_EQ(FailPoint::HitCount("p"), 1);
}

TEST_F(FailPointTest, SetFromListArmsEveryEntry) {
  ASSERT_TRUE(FailPoint::SetFromList(
                  "one=error(kIoError)@1, two=delay(0), three=crash@99")
                  .ok());
  EXPECT_FALSE(HitPoint("one").ok());
  EXPECT_TRUE(HitPoint("two").ok());
  EXPECT_TRUE(HitPoint("three").ok());  // crash armed for hit 99 only
}

TEST_F(FailPointTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(FailPoint::Set("p", "explode").ok());
  EXPECT_FALSE(FailPoint::Set("p", "error(kNoSuchCode)").ok());
  EXPECT_FALSE(FailPoint::Set("p", "error(kIoError)@0").ok());
  EXPECT_FALSE(FailPoint::Set("p", "error(kIoError)@x").ok());
  EXPECT_FALSE(FailPoint::Set("p", "delay(-5)").ok());
  EXPECT_FALSE(FailPoint::Set("", "crash").ok());
  EXPECT_FALSE(FailPoint::SetFromList("missing_equals").ok());
  // Nothing half-armed by the rejects above.
  EXPECT_FALSE(failpoint_internal::AnyArmed());
}

}  // namespace
}  // namespace sstban::core
